//! The GPU: command execution through the full pipeline.

use std::collections::HashMap;

use gwc_api::{decode_commands, encode_commands, ClearMask, Command, CommandSink, Indices,
              StateCommand, VertexLayout};
use gwc_math::Vec4;
use gwc_mem::compress::{classify_color_block, classify_z_block, BlockState,
                        CompressionDirectory};
use gwc_mem::{AddressSpace, Cache, CacheConfig, CacheStats, ClientTraffic, FrameTraffic,
              LineState, MemClient, MemoryController};
use gwc_raster::{BlendState, CompareFunc, CullMode, DepthStencilBuffer, DepthState,
                 FrontFace, HzBuffer, StencilOp, StencilState, TriangleSetup, Viewport};
use gwc_shader::{ExecStats, Program, ProgramKind, ShaderMachine};
use gwc_telemetry::{Collector, FrameSample, Level, TraceMeta};
use gwc_texture::{SampleStats, SamplerState, Texture};

use crate::budget::CancelToken;
use crate::checkpoint::{self, CheckpointError, Dec, Enc, SectionWriter};
use crate::colorbuffer::ColorBuffer;
use crate::config::GpuConfig;
use crate::error::{FaultKind, FaultPolicy, SimError};
use crate::fragment::{DrawPacket, StripeJob, StripeOutcome, StripeTrace, StripeUnits};
use crate::geometry::{self, GeomOutput, GeomRequest, SetupState};
use crate::stats::{FrameSimStats, SimStats};
use crate::streamer::VertexCache;

#[derive(Debug)]
struct VertexBufferRes {
    layout: VertexLayout,
    data: Vec<Vec4>,
    #[allow(dead_code)]
    addr: u64,
}

#[derive(Debug)]
struct IndexBufferRes {
    indices: Indices,
    #[allow(dead_code)]
    addr: u64,
}

/// A draw whose geometry is committed but whose fragment flush is
/// deferred, so the *next* draw's geometry can overlap it. Pure data —
/// no thread lives between commands. Everything the flush reads that a
/// non-draining command could change (render state, texture bindings,
/// the fragment-shader constants) is snapshotted here at defer time, so
/// the flush sees exactly the state the serial path would have.
#[derive(Debug)]
struct PendingFlush {
    tris: Vec<(TriangleSetup, StencilState)>,
    program: Program,
    early_z_ok: bool,
    hz_ok: bool,
    depth_state: DepthState,
    blend: BlendState,
    color_mask: bool,
    alpha_test: Option<f32>,
    bindings: HashMap<u8, u32>,
    viewport: Viewport,
    /// Fragment machine snapshot: master constants, zeroed statistics.
    proto_fs: ShaderMachine,
    /// Work tick at the start of the draw (span start).
    draw_start: u64,
    /// Work tick after the draw's geometry committed; the flush's trace
    /// timebase and the base of its fragment-tick span extension.
    geom_end: u64,
    tri_count: u64,
}

/// A validated draw's geometry work, resolved by `Gpu::validate_draw`
/// before the (possibly overlapped) geometry run is kicked.
struct GeomArgs {
    vertex_buffer: u32,
    index_buffer: u32,
    primitive: gwc_raster::PrimitiveType,
    first: usize,
    tri_count: usize,
    program: Program,
}

/// Validation products of a draw that needs fragment work resolved.
struct DrawPrep {
    vertex_program: Program,
    fragment_program: Program,
    early_z_ok: bool,
    hz_ok: bool,
}

/// The behavioural GPU simulator.
///
/// Construct one with a [`GpuConfig`], then feed it a command stream
/// (it implements [`CommandSink`], so a [`gwc_api::Trace`] replays into it
/// directly). Statistics accumulate per frame in [`Gpu::stats`].
///
/// ```
/// use gwc_api::{Command, CommandSink};
/// use gwc_pipeline::{Gpu, GpuConfig};
///
/// let mut gpu = Gpu::new(GpuConfig::r520(64, 64));
/// gpu.consume(&Command::EndFrame);
/// assert_eq!(gpu.stats().frames().len(), 1);
/// ```
#[derive(Debug)]
pub struct Gpu {
    config: GpuConfig,
    viewport: Viewport,
    vram: AddressSpace,

    // Resources.
    vertex_buffers: HashMap<u32, VertexBufferRes>,
    index_buffers: HashMap<u32, IndexBufferRes>,
    textures: HashMap<u32, (Texture, SamplerState)>,
    programs: HashMap<u32, Program>,

    // Bound state.
    tex_bindings: HashMap<u8, u32>,
    bound_vertex: Option<u32>,
    bound_fragment: Option<u32>,
    depth_state: DepthState,
    stencil_front: StencilState,
    stencil_back: StencilState,
    cull: CullMode,
    front_face: FrontFace,
    blend: BlendState,
    color_mask: bool,
    alpha_test: Option<f32>,

    // Execution units.
    vs_machine: ShaderMachine,
    fs_machine: ShaderMachine,
    vcache: VertexCache,

    // Stripe-parallel fragment back end: per-stripe caches, texture units
    // and memory controllers (stripe layout is fixed by the configuration,
    // never by the thread count), plus the resolved worker count.
    stripes: Vec<StripeUnits>,
    threads: u32,

    // Chunk-parallel geometry front end: resolved worker count (chunk
    // layout is fixed by `GpuConfig::geometry_chunk`, never by this), and
    // the two-deep draw pipeline's deferred fragment flush, if any.
    geom_threads: u32,
    pending: Option<PendingFlush>,

    // Framebuffer state.
    zbuffer: DepthStencilBuffer,
    hz: HzBuffer,
    z_dir: CompressionDirectory,
    zb_addr: u64,
    colorbuffer: ColorBuffer,
    color_dir: CompressionDirectory,
    cb_addr: u64,

    // Memory & statistics.
    mem: MemoryController,
    frame: FrameSimStats,
    stats: SimStats,
    vs_prev: ExecStats,
    fs_prev: ExecStats,

    // Fault handling.
    skip_frame: bool,
    first_error: Option<SimError>,
    // Whether seeded fault injection is armed; the draw pipeline falls
    // back to synchronous flushes while it is (injector streams are
    // consumed in read order, which deferral would reorder).
    injection_armed: bool,

    // Supervision: an optional cooperative cancellation token. When it
    // trips, command execution stops doing work (the stream keeps
    // draining) and the run's partial results are the supervisor's to
    // discard. Not serialized — a restored GPU starts un-supervised.
    cancel: Option<CancelToken>,

    // Observability: the deterministic work-tick clock and an optional
    // telemetry collector keyed by it. The tick *always* advances — one
    // per command, per assembled triangle, and per rasterized fragment —
    // whether or not a collector is attached, so checkpoint bytes and
    // resumed traces never depend on whether a run was observed. The
    // collector itself is never serialized.
    tick: u64,
    telemetry: Option<Collector>,

    // Checkpoint support: every successful resource-creation command, in
    // order. Replaying the log through a fresh GPU reproduces the exact
    // VRAM layout (bump allocation is deterministic).
    creation_log: Vec<Command>,
}

/// Resolves the fragment-pipeline worker count: an explicit configuration
/// wins; `0` consults the `GWC_THREADS` environment variable and defaults
/// to 1 (serial).
fn resolve_threads(configured: u32) -> u32 {
    if configured > 0 {
        return configured;
    }
    std::env::var("GWC_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<u32>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Resolves the geometry worker count: an explicit configuration wins;
/// `0` consults the `GWC_GEOM_THREADS` environment variable and falls
/// back to the resolved fragment worker count.
fn resolve_geom_threads(configured: u32, fragment_threads: u32) -> u32 {
    if configured > 0 {
        return configured;
    }
    std::env::var("GWC_GEOM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<u32>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(fragment_threads)
}

/// Builds the borrowed geometry request for a validated draw. A free
/// function over the individual fields (rather than a `&self` method) so
/// `flush_pending` can construct it while the framebuffer bands and
/// stripe units are mutably lent to the overlapped fragment flush.
#[allow(clippy::too_many_arguments)]
fn geom_request<'a>(
    vertex_buffers: &'a HashMap<u32, VertexBufferRes>,
    index_buffers: &'a HashMap<u32, IndexBufferRes>,
    config: &GpuConfig,
    geom_threads: u32,
    vs_machine: &ShaderMachine,
    setup: SetupState,
    cancel: Option<&'a CancelToken>,
    a: &'a GeomArgs,
) -> GeomRequest<'a> {
    let vb = &vertex_buffers[&a.vertex_buffer];
    let ib = &index_buffers[&a.index_buffer];
    let mut vs_proto = vs_machine.clone();
    vs_proto.restore_stats(ExecStats::default());
    GeomRequest {
        data: &vb.data,
        attrs: vb.layout.attributes.max(1) as usize,
        stride_bytes: vb.layout.stride_bytes as u64,
        vertex_buffer: a.vertex_buffer,
        indices: &ib.indices,
        first: a.first,
        primitive: a.primitive,
        tri_count: a.tri_count,
        program: &a.program,
        vs_proto,
        cache_entries: config.vertex_cache_entries,
        chunk: config.geometry_chunk.max(1) as usize,
        workers: geom_threads as usize,
        setup,
        cancel,
    }
}

impl Gpu {
    /// Creates a GPU with cleared framebuffers.
    ///
    /// # Panics
    ///
    /// Panics if [`GpuConfig::stripe_rows`] is zero or not a multiple
    /// of 16 (rasterizer tiles and compression blocks must not straddle
    /// stripes).
    pub fn new(config: GpuConfig) -> Self {
        assert!(
            config.stripe_rows > 0 && config.stripe_rows.is_multiple_of(16),
            "stripe_rows must be a non-zero multiple of 16"
        );
        let viewport = Viewport::new(config.width, config.height);
        let mut vram = AddressSpace::new();
        let fb_bytes = config.width as u64 * config.height as u64 * 4;
        let zb_addr = vram.alloc(fb_bytes, 256);
        let cb_addr = vram.alloc(fb_bytes, 256);
        let stripe_count = config.height.div_ceil(config.stripe_rows) as usize;
        let stripes = (0..stripe_count).map(|_| StripeUnits::new(&config)).collect();
        let threads = resolve_threads(config.threads);
        let geom_threads = resolve_geom_threads(config.geometry_threads, threads);
        Gpu {
            viewport,
            vram,
            vertex_buffers: HashMap::new(),
            index_buffers: HashMap::new(),
            textures: HashMap::new(),
            programs: HashMap::new(),
            tex_bindings: HashMap::new(),
            bound_vertex: None,
            bound_fragment: None,
            depth_state: DepthState::default(),
            stencil_front: StencilState::default(),
            stencil_back: StencilState::default(),
            cull: CullMode::default(),
            front_face: FrontFace::default(),
            blend: BlendState::default(),
            color_mask: true,
            alpha_test: None,
            vs_machine: ShaderMachine::new(),
            fs_machine: ShaderMachine::new(),
            vcache: VertexCache::new(config.vertex_cache_entries),
            stripes,
            threads,
            geom_threads,
            pending: None,
            zbuffer: DepthStencilBuffer::new(config.width, config.height),
            hz: HzBuffer::new(config.width, config.height),
            z_dir: CompressionDirectory::new(config.width, config.height),
            zb_addr,
            colorbuffer: ColorBuffer::new(config.width, config.height),
            color_dir: CompressionDirectory::new(config.width, config.height),
            cb_addr,
            mem: MemoryController::new(),
            frame: FrameSimStats::default(),
            stats: SimStats::new(),
            vs_prev: ExecStats::default(),
            fs_prev: ExecStats::default(),
            skip_frame: false,
            first_error: None,
            injection_armed: false,
            cancel: None,
            tick: 0,
            telemetry: None,
            creation_log: Vec::new(),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Whole-run simulator statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Memory controller (per-frame traffic history).
    pub fn memory(&self) -> &MemoryController {
        &self.mem
    }

    /// Arms (or with `rate_ppm == 0` disarms) seeded read-corruption fault
    /// injection on the memory controllers. Injected faults surface as
    /// [`SimError::MemoryFault`] through the configured [`FaultPolicy`].
    /// Each stripe's controller gets its own injector stream derived from
    /// `seed` and the stripe index, so the corruption pattern depends on
    /// the (configuration-fixed) stripe layout, never on the thread count.
    pub fn enable_memory_fault_injection(&mut self, seed: u64, rate_ppm: u32) {
        self.injection_armed = rate_ppm > 0;
        self.mem.enable_fault_injection(seed, rate_ppm);
        for (i, s) in self.stripes.iter_mut().enumerate() {
            let stripe_seed = seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            s.mem.enable_fault_injection(stripe_seed, rate_ppm);
        }
    }

    /// Attaches a [`CancelToken`] for supervised runs. Pipeline loops
    /// charge simulated-work ticks against it (one per command, per
    /// post-clip triangle, and per rasterized quad) and stop doing work
    /// once it trips; the command stream keeps draining so the caller's
    /// replay loop regains control at the next command. A cancelled run's
    /// partial statistics are *not* meaningful — discard the GPU.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Whether an attached [`CancelToken`] has tripped.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(|t| t.is_cancelled())
    }

    /// Attaches a telemetry [`Collector`]. Recording is keyed by the
    /// work-tick clock, which advances identically with or without a
    /// collector (and at any level), so attaching one cannot perturb the
    /// simulation. Prefer [`Gpu::enable_telemetry`], which builds the
    /// collector from this GPU's own configuration.
    pub fn set_telemetry(&mut self, collector: Collector) {
        let mut collector = collector;
        collector.resume_at(self.tick);
        self.telemetry = Some(collector);
    }

    /// Builds and attaches a [`Collector`] at `level` for a run labelled
    /// `game`, deriving the trace metadata (framebuffer and stripe
    /// geometry, memory client order, ring capacity) from this GPU.
    pub fn enable_telemetry(&mut self, level: Level, game: &str, span_capacity: usize) {
        let meta = TraceMeta {
            game: game.to_string(),
            width: self.config.width,
            height: self.config.height,
            stripe_rows: self.config.stripe_rows,
            stripes: self.stripes.len() as u32,
            clients: MemClient::ALL.iter().map(|c| c.name().to_string()).collect(),
            span_capacity: span_capacity as u32,
        };
        self.set_telemetry(Collector::new(level, meta));
    }

    /// The attached telemetry collector, if any.
    pub fn telemetry(&self) -> Option<&Collector> {
        self.telemetry.as_ref()
    }

    /// Detaches and returns the telemetry collector for export.
    pub fn take_telemetry(&mut self) -> Option<Collector> {
        self.telemetry.take()
    }

    /// The deterministic work-tick clock: one tick per consumed command,
    /// per assembled triangle, and per rasterized fragment. Serialized in
    /// checkpoints, so it survives resume; never derived from wall time.
    pub fn work_tick(&self) -> u64 {
        self.tick
    }

    /// Resolved fragment-pipeline worker count (see
    /// [`GpuConfig::threads`]).
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// Resolved geometry-front-end worker count (see
    /// [`GpuConfig::geometry_threads`]).
    pub fn geometry_threads(&self) -> u32 {
        self.geom_threads
    }

    /// Whether the two-deep draw pipeline is live: it requires the
    /// configuration flag, strict fault handling (the lenient policies
    /// re-attribute absorbed faults at batch/frame granularity, which a
    /// deferred flush would shift), and a disarmed fault injector.
    fn pipeline_active(&self) -> bool {
        self.config.frame_pipeline
            && matches!(self.config.fault_policy, FaultPolicy::Strict)
            && !self.injection_armed
    }

    /// Number of framebuffer stripes (fixed by the configuration).
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// Z & stencil cache statistics, aggregated over stripes (Table XIV).
    pub fn z_cache_stats(&self) -> CacheStats {
        let mut out = CacheStats::default();
        for s in &self.stripes {
            out.merge(s.z_cache.stats());
        }
        out
    }

    /// Color cache statistics, aggregated over stripes (Table XIV).
    pub fn color_cache_stats(&self) -> CacheStats {
        let mut out = CacheStats::default();
        for s in &self.stripes {
            out.merge(s.color_cache.stats());
        }
        out
    }

    /// Texture L0 cache statistics, aggregated over stripes (Table XIV).
    pub fn tex_l0_stats(&self) -> CacheStats {
        let mut out = CacheStats::default();
        for s in &self.stripes {
            out.merge(s.texunit.l0_stats());
        }
        out
    }

    /// Texture L1 cache statistics, aggregated over stripes (Table XIV).
    pub fn tex_l1_stats(&self) -> CacheStats {
        let mut out = CacheStats::default();
        for s in &self.stripes {
            out.merge(s.texunit.l1_stats());
        }
        out
    }

    /// The rendered color buffer.
    pub fn framebuffer(&self) -> &ColorBuffer {
        &self.colorbuffer
    }

    /// CRC-32 of the packed framebuffer contents — a cheap fingerprint for
    /// determinism checks across thread counts.
    pub fn framebuffer_crc(&self) -> u32 {
        let mut bytes = Vec::with_capacity(self.colorbuffer.raw_pixels().len() * 4);
        for &p in self.colorbuffer.raw_pixels() {
            bytes.extend_from_slice(&p.to_le_bytes());
        }
        checkpoint::crc32(&bytes)
    }

    /// The depth/stencil buffer.
    pub fn depth_buffer(&self) -> &DepthStencilBuffer {
        &self.zbuffer
    }

    /// GPU memory allocated for resources + framebuffers.
    pub fn vram_allocated(&self) -> u64 {
        self.vram.allocated_bytes()
    }

    /// The first classified fault seen by the infallible [`CommandSink`]
    /// path (regardless of [`FaultPolicy`]); `None` if replay was clean.
    pub fn first_error(&self) -> Option<&SimError> {
        self.first_error.as_ref()
    }

    /// Checks a prospective resource allocation against the VRAM budget.
    fn check_alloc(&self, requested: u64) -> Result<(), SimError> {
        let allocated = self.vram.allocated_bytes();
        if allocated.saturating_add(requested) > self.config.vram_limit_bytes {
            return Err(SimError::AllocationOverflow {
                requested,
                allocated,
                limit: self.config.vram_limit_bytes,
            });
        }
        Ok(())
    }

    /// Checks a constant upload range against the machine's register file.
    fn check_constants(
        program: Option<u32>,
        base: u8,
        count: usize,
        limit: usize,
    ) -> Result<(), SimError> {
        if base as usize + count > limit {
            return Err(SimError::ShaderFault {
                program: program.unwrap_or(u32::MAX),
                reason: "constant upload past end of register file",
            });
        }
        Ok(())
    }

    // ---- pipeline internals ------------------------------------------

    /// Whether `command` must see the deferred fragment flush committed
    /// before it executes. Draws manage the pipeline themselves; render
    /// state, bindings and program binds are snapshotted into the
    /// [`PendingFlush`], so only commands that observe framebuffer or
    /// statistics state (clears, frame retirement, resource creation) or
    /// that can fault in their own right (constant uploads) drain.
    fn needs_drain(command: &Command) -> bool {
        match command {
            Command::Draw { .. } => false,
            Command::State(s) => matches!(
                s,
                StateCommand::VertexConstants { .. } | StateCommand::FragmentConstants { .. }
            ),
            _ => true,
        }
    }

    /// Commits the deferred fragment flush, if one is pending.
    fn drain_pending(&mut self) -> Result<(), SimError> {
        match self.pending.take() {
            Some(p) => self.flush_pending(p, None).0,
            None => Ok(()),
        }
    }

    /// Resolves and validates everything a draw needs before geometry
    /// runs, charging the index-fetch memory traffic. Exactly the serial
    /// validation order, so the first fault reported is unchanged.
    fn validate_draw(
        &mut self,
        vertex_buffer: u32,
        index_buffer: u32,
        vp_id: u32,
        fp_id: u32,
        first: u32,
        count: u32,
    ) -> Result<DrawPrep, SimError> {
        let vertex_program = self
            .programs
            .get(&vp_id)
            .ok_or(SimError::UnboundResource { kind: "program", id: vp_id })?
            .clone();
        let fragment_program = self
            .programs
            .get(&fp_id)
            .ok_or(SimError::UnboundResource { kind: "program", id: fp_id })?
            .clone();
        if vertex_program.kind() != ProgramKind::Vertex {
            return Err(SimError::ShaderFault {
                program: vp_id,
                reason: "bound vertex program is not a vertex program",
            });
        }
        if fragment_program.kind() != ProgramKind::Fragment {
            return Err(SimError::ShaderFault {
                program: fp_id,
                reason: "bound fragment program is not a fragment program",
            });
        }
        if !self.vertex_buffers.contains_key(&vertex_buffer) {
            return Err(SimError::UnboundResource { kind: "vertex-buffer", id: vertex_buffer });
        }

        // Index fetch traffic (Vertex memory client reads the index list).
        let indices = &self
            .index_buffers
            .get(&index_buffer)
            .ok_or(SimError::UnboundResource { kind: "index-buffer", id: index_buffer })?
            .indices;
        let index_len = indices.len() as u64;
        if first as u64 + count as u64 > index_len {
            return Err(SimError::IndexOutOfRange {
                what: "index-range",
                index: first as u64 + count as u64,
                limit: index_len,
            });
        }
        let bpi = indices.bytes_per_index() as u64;
        self.mem.read(MemClient::Vertex, bpi * count as u64);

        // Early-z legality for this draw.
        let early_z_ok = self.config.early_z
            && self.depth_state.test
            && !fragment_program.uses_kill()
            && !fragment_program.writes_depth()
            && self.alpha_test.is_none();
        // HZ legality: rejectable depth func and no z-fail/fail-dependent
        // stencil side effects.
        let stencil_sensitive = |s: &StencilState| {
            s.test && (s.zfail != StencilOp::Keep || s.fail != StencilOp::Keep)
        };
        let hz_ok = self.config.hierarchical_z
            && self.depth_state.test
            && matches!(
                self.depth_state.func,
                CompareFunc::Less | CompareFunc::LessEqual | CompareFunc::Equal
            )
            && !stencil_sensitive(&self.stencil_front)
            && !stencil_sensitive(&self.stencil_back);

        Ok(DrawPrep { vertex_program, fragment_program, early_z_ok, hz_ok })
    }

    fn draw(
        &mut self,
        vertex_buffer: u32,
        index_buffer: u32,
        primitive: gwc_raster::PrimitiveType,
        first: u32,
        count: u32,
    ) -> Result<(), SimError> {
        let (Some(vp_id), Some(fp_id)) = (self.bound_vertex, self.bound_fragment) else {
            return Ok(()); // no programs bound: draw is ignored
        };
        // A validation fault belongs to *this* command, but a deferred
        // flush is older work: commit it first so its fault (if any) wins,
        // matching the serial surfacing order.
        let prep = match self.validate_draw(vertex_buffer, index_buffer, vp_id, fp_id, first, count)
        {
            Ok(prep) => prep,
            Err(e) => {
                self.drain_pending()?;
                return Err(e);
            }
        };
        let tri_count = primitive.triangle_count(count as usize);
        let args = GeomArgs {
            vertex_buffer,
            index_buffer,
            primitive,
            first: first as usize,
            tri_count,
            program: prep.vertex_program,
        };

        // Phase 1 — chunk-parallel geometry, overlapped with the deferred
        // draw's fragment flush when one is pending. A geometry fault
        // aborts the draw before *any* fragment work, so the flush always
        // sees a complete triangle list.
        let out = match self.pending.take() {
            Some(p) => {
                let (res, out) = self.flush_pending(p, Some(&args));
                // The older draw's fault wins; this draw's geometry is
                // discarded with it (its statistics were never committed).
                res?;
                match out {
                    Some(out) => out,
                    None => return Ok(()), // unreachable: geometry was requested
                }
            }
            None => {
                let req = geom_request(
                    &self.vertex_buffers,
                    &self.index_buffers,
                    &self.config,
                    self.geom_threads,
                    &self.vs_machine,
                    self.setup_state(),
                    self.cancel.as_ref(),
                    &args,
                );
                geometry::run(&req)
            }
        };
        if out.cancelled {
            return Ok(());
        }

        // Commit geometry: work ticks, statistics, memory traffic and
        // shader deltas, exactly as the serial loop accumulated them (the
        // shard holds counts for precisely the prefix serial executed).
        let draw_start = self.tick;
        self.tick += out.ticks;
        let geom_end = self.tick;
        self.vcache.add_stats(out.shard.indices, out.shard.vcache_hits);
        self.frame.indices += out.shard.indices;
        self.frame.vcache_hits += out.shard.vcache_hits;
        self.frame.shaded_vertices += out.shard.shaded_vertices;
        self.frame.assembled += out.shard.assembled;
        self.frame.clipped += out.shard.clipped;
        self.frame.culled += out.shard.culled;
        self.frame.traversed += out.shard.setup;
        // One Vertex-client transaction per fetched vertex, as the serial
        // streamer issued them.
        let stride = self.vertex_buffers[&vertex_buffer].layout.stride_bytes as u64;
        for _ in 0..out.shard.fetched_vertices {
            self.mem.read(MemClient::Vertex, stride);
        }
        let mut vs_total = *self.vs_machine.stats();
        vs_total.merge(&out.vs_delta);
        self.vs_machine.restore_stats(vs_total);

        if let Some(e) = out.error {
            return Err(e);
        }
        if let Some(t) = self.telemetry.as_mut() {
            t.record_geometry(draw_start, geom_end, out.shard.shaded_vertices, out.shard.setup);
        }
        if out.tris.is_empty() {
            if let Some(t) = self.telemetry.as_mut() {
                t.record_draw(draw_start, geom_end, tri_count as u64);
            }
            return Ok(());
        }

        // Phase 2 — stripe-parallel fragment flush: deferred one draw when
        // the pipeline is live, synchronous otherwise.
        let mut proto_fs = self.fs_machine.clone();
        proto_fs.restore_stats(ExecStats::default());
        let pending = PendingFlush {
            tris: out.tris,
            program: prep.fragment_program,
            early_z_ok: prep.early_z_ok,
            hz_ok: prep.hz_ok,
            depth_state: self.depth_state,
            blend: self.blend,
            color_mask: self.color_mask,
            alpha_test: self.alpha_test,
            bindings: self.tex_bindings.clone(),
            viewport: self.viewport,
            proto_fs,
            draw_start,
            geom_end,
            tri_count: tri_count as u64,
        };
        if self.pipeline_active() {
            self.pending = Some(pending);
            Ok(())
        } else {
            self.flush_pending(pending, None).0
        }
    }

    /// The clip/cull/setup state a draw's geometry samples at kick time.
    fn setup_state(&self) -> SetupState {
        SetupState {
            viewport: self.viewport,
            cull: self.cull,
            front_face: self.front_face,
            stencil_front: self.stencil_front,
            stencil_back: self.stencil_back,
        }
    }

    /// Commits one draw's deferred fragment work across the stripes,
    /// optionally overlapping the *next* draw's geometry on the main
    /// thread, then reduces the per-stripe results deterministically (in
    /// stripe order). Returns the flush result and the overlapped
    /// geometry's output, if requested.
    ///
    /// The overlap is safe by disjointness: the stripe jobs mutably
    /// borrow framebuffer bands and stripe units, while geometry reads
    /// only resource tables, configuration and the vertex machine — and
    /// it is deterministic by construction, so running it concurrently
    /// with (or after, or without) the flush cannot change any result.
    fn flush_pending(
        &mut self,
        p: PendingFlush,
        geom: Option<&GeomArgs>,
    ) -> (Result<(), SimError>, Option<GeomOutput>) {
        let PendingFlush {
            tris,
            program,
            early_z_ok,
            hz_ok,
            depth_state,
            blend,
            color_mask,
            alpha_test,
            bindings,
            viewport,
            proto_fs: proto,
            draw_start,
            geom_end,
            tri_count,
        } = p;
        // Detach the telemetry rings before other fields of `self` are
        // borrowed into the jobs. Each stripe records into its own ring;
        // they return through the outcomes and reattach in stripe order.
        // The trace timebase is the deferred draw's own geometry-end tick,
        // not the current clock (which may already have advanced past it
        // by the deferring command's tick), so spans are byte-identical to
        // the synchronous flush.
        let trace_base = geom_end;
        let mut trace_rings = self.telemetry.as_mut().and_then(Collector::take_stripe_rings);
        let packet = DrawPacket {
            tris,
            program: &program,
            early_z_ok,
            hz_ok,
            depth_state,
            blend,
            color_mask,
            alpha_test,
            width: self.config.width,
            height: self.config.height,
            z_compression: self.config.z_compression,
            color_compression: self.config.color_compression,
            zb_addr: self.zb_addr,
            cb_addr: self.cb_addr,
            bindings: &bindings,
            pool: &self.textures,
            viewport,
            cancel: self.cancel.as_ref(),
        };
        let geom_req = geom.map(|a| {
            geom_request(
                &self.vertex_buffers,
                &self.index_buffers,
                &self.config,
                self.geom_threads,
                &self.vs_machine,
                SetupState {
                    viewport: self.viewport,
                    cull: self.cull,
                    front_face: self.front_face,
                    stencil_front: self.stencil_front,
                    stencil_back: self.stencil_back,
                },
                self.cancel.as_ref(),
                a,
            )
        });

        let stripe_rows = self.config.stripe_rows;
        let height = self.config.height;
        let jobs: Vec<StripeJob<'_>> = self
            .zbuffer
            .band_views(stripe_rows)
            .into_iter()
            .zip(self.hz.band_views(stripe_rows))
            .zip(self.colorbuffer.band_views(stripe_rows))
            .zip(self.z_dir.band_views(stripe_rows))
            .zip(self.color_dir.band_views(stripe_rows))
            .zip(self.stripes.iter_mut())
            .enumerate()
            .map(|(i, (((((z, hz), color), z_dir), color_dir), units))| {
                let y0 = i as u32 * stripe_rows;
                StripeJob {
                    index: i,
                    y0,
                    y1: (y0 + stripe_rows).min(height),
                    z,
                    hz,
                    color,
                    z_dir,
                    color_dir,
                    units,
                    fs: proto.clone(),
                    shard: FrameSimStats::default(),
                    fault: None,
                    trace: None,
                }
            })
            .collect();
        let mut jobs = jobs;
        if let Some(rings) = trace_rings.take() {
            for (job, ring) in jobs.iter_mut().zip(rings) {
                job.trace = Some(StripeTrace { base: trace_base, ring, tiles: 0 });
            }
        }

        let workers = (self.threads as usize).min(jobs.len()).max(1);
        let (mut outcomes, geom_out): (Vec<StripeOutcome>, Option<GeomOutput>) =
            if workers == 1 && geom_req.is_none() {
                // Serial path: the same per-stripe code, run inline in
                // stripe order — parallel runs are bit-identical by
                // construction.
                let outcomes = jobs
                    .into_iter()
                    .map(|mut job| {
                        job.run(&packet);
                        job.finish()
                    })
                    .collect();
                (outcomes, None)
            } else {
                // Interleaved assignment: worker w owns stripes w, w+W, …
                // — purely a scheduling choice, invisible in the results.
                // With an overlap request, the stripes always go to worker
                // threads (even one) so the main thread can run the next
                // draw's geometry concurrently.
                let mut buckets: Vec<Vec<StripeJob<'_>>> =
                    (0..workers).map(|_| Vec::new()).collect();
                for (i, job) in jobs.into_iter().enumerate() {
                    buckets[i % workers].push(job);
                }
                std::thread::scope(|scope| {
                    let packet = &packet;
                    let handles: Vec<_> = buckets
                        .into_iter()
                        .map(|bucket| {
                            scope.spawn(move || {
                                bucket
                                    .into_iter()
                                    .map(|mut job| {
                                        job.run(packet);
                                        job.finish()
                                    })
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    let geom_out = geom_req.as_ref().map(geometry::run);
                    let outcomes = handles
                        .into_iter()
                        .flat_map(|h| match h.join() {
                            Ok(outcomes) => outcomes,
                            Err(panic) => std::panic::resume_unwind(panic),
                        })
                        .collect();
                    (outcomes, geom_out)
                })
            };
        outcomes.sort_by_key(|o| o.index);

        // Deterministic reduction in stripe order: every merged quantity
        // is a plain sum, and traffic/faults are absorbed lowest stripe
        // first, so any schedule produces identical state.
        let mut fs_delta = ExecStats::default();
        let mut fault: Option<SimError> = None;
        let mut injected: Option<(&'static str, u64)> = None;
        let mut frag_ticks = 0u64;
        for o in &outcomes {
            self.frame.merge(&o.shard);
            self.hz.add_counts(o.hz_tested, o.hz_rejected);
            fs_delta.merge(&o.fs_delta);
            self.mem.absorb(&o.traffic);
            frag_ticks += o.shard.frags_raster;
            if fault.is_none() {
                fault = o.fault.clone();
            }
            if let Some((client, count)) = o.injected {
                match &mut injected {
                    Some((_, total)) => *total += count,
                    None => injected = Some((client, count)),
                }
            }
        }
        // One work tick per rasterized fragment: the draw's total fragment
        // count bounds every stripe's per-stage span duration, which is
        // what keeps each per-stripe trace track monotonic.
        self.tick += frag_ticks;
        if let Some(t) = self.telemetry.as_mut() {
            if t.spans_enabled() {
                // Outcomes are already sorted, so the rings reattach in
                // ascending stripe order — the same order the stat shards
                // merged in above.
                let rings: Vec<_> = outcomes.iter_mut().filter_map(|o| o.trace.take()).collect();
                t.restore_stripe_rings(rings);
            }
        }
        let mut fs_total = *self.fs_machine.stats();
        fs_total.merge(&fs_delta);
        self.fs_machine.restore_stats(fs_total);

        if let Some(e) = fault {
            return (Err(e), geom_out);
        }
        if let Some((client, count)) = injected {
            return (Err(SimError::MemoryFault { client, count }), geom_out);
        }
        // The draw retires: its span runs from its own start tick to its
        // geometry end plus this flush's fragment ticks — the exact value
        // the serial clock showed at this point.
        if let Some(t) = self.telemetry.as_mut() {
            t.record_draw(draw_start, geom_end + frag_ticks, tri_count);
        }
        (Ok(()), geom_out)
    }

    fn clear(&mut self, mask: ClearMask, color: Vec4, depth: f32, stencil: u8) {
        if mask.depth {
            self.zbuffer.clear_depth(depth);
            self.hz.clear(depth);
        }
        if mask.stencil {
            self.zbuffer.clear_stencil(stencil);
        }
        if mask.depth && mask.stencil {
            // Only a full depth+stencil clear is a fast clear of the
            // combined surface; a partial clear leaves live data, so the
            // compression state and cached lines must survive (the cache is
            // architectural state here: the cleared plane's stored values
            // are read back from the buffers, not the cache model).
            self.z_dir.fast_clear();
            for s in &mut self.stripes {
                s.z_cache.invalidate();
            }
        }
        if mask.color {
            self.colorbuffer.clear(color);
            self.color_dir.fast_clear();
            for s in &mut self.stripes {
                s.color_cache.invalidate();
            }
        }
    }

    fn end_frame(&mut self) {
        // Flush per-stripe framebuffer caches in stripe order (dirty lines
        // become compressed writebacks through the master controller; the
        // surfaces are whole again, so the full-surface helpers apply).
        for i in 0..self.stripes.len() {
            for line in self.stripes[i].z_cache.flush_collect() {
                self.write_back_z_line(line);
            }
        }
        for i in 0..self.stripes.len() {
            for line in self.stripes[i].color_cache.flush_collect() {
                self.write_back_color_line(line);
            }
        }
        // DAC scan-out: reads the (possibly compressed) color surface.
        let mut dac_bytes = 0u64;
        for by in 0..self.color_dir.blocks_y() {
            for bx in 0..self.color_dir.blocks_x() {
                let state = if self.config.color_compression {
                    self.color_dir.state_at(bx * 8, by * 8)
                } else {
                    BlockState::Uncompressed
                };
                dac_bytes += state.transfer_bytes(256);
            }
        }
        self.mem.read(MemClient::Dac, dac_bytes);

        // Shader execution deltas.
        let vs_now = *self.vs_machine.stats();
        let fs_now = *self.fs_machine.stats();
        let vs_delta = vs_now.delta_since(&self.vs_prev);
        let fs_delta = fs_now.delta_since(&self.fs_prev);
        self.frame.vs_instructions = vs_delta.instructions;
        self.frame.fs_instructions = fs_delta.instructions;
        self.frame.fs_tex_instructions = fs_delta.texture_instructions;
        self.vs_prev = vs_now;
        self.fs_prev = fs_now;

        // Texture filtering stats, summed over stripes.
        let mut tex = SampleStats::default();
        for s in &mut self.stripes {
            let t = s.texunit.take_sample_stats();
            tex.requests += t.requests;
            tex.bilinear_samples += t.bilinear_samples;
        }
        self.frame.tex_requests = tex.requests;
        self.frame.bilinear_samples = tex.bilinear_samples;

        let traffic = self.mem.end_frame();
        if self.telemetry.as_ref().is_some_and(Collector::enabled) {
            // Cache counters are cumulative on the simulator side; the
            // collector converts them to per-frame deltas internally. The
            // frame index comes from the stats history, so it is correct
            // after a checkpoint resume too.
            let sample = self.frame_sample(&traffic);
            let tick = self.tick;
            if let Some(t) = self.telemetry.as_mut() {
                t.end_frame(tick, sample);
            }
        }
        let frame = std::mem::take(&mut self.frame);
        self.stats.push_frame(frame);
        self.vcache.reset_stats();
    }

    /// Builds the telemetry row for the frame being retired. Cache fields
    /// are the *cumulative* counters; [`Collector::end_frame`] differences
    /// them against the previous frame.
    fn frame_sample(&self, traffic: &FrameTraffic) -> FrameSample {
        let z = self.z_cache_stats();
        let color = self.color_cache_stats();
        let (mut l0, mut l1) = ((0u64, 0u64), (0u64, 0u64));
        for s in &self.stripes {
            let [a, b] = s.texunit.cache_hit_counts();
            l0 = (l0.0 + a.0, l0.1 + a.1);
            l1 = (l1.0 + b.0, l1.1 + b.1);
        }
        let (vcache_lookups, vcache_hits) = self.vcache.frame_stats();
        debug_assert_eq!(vcache_lookups, self.frame.indices);
        let parts = traffic.parts();
        FrameSample {
            frame: self.stats.frames().len() as u64,
            end_tick: self.tick,
            batches: 0, // stamped by the collector from its draw count
            indices: self.frame.indices,
            shaded_vertices: self.frame.shaded_vertices,
            vcache_hits,
            triangles: self.frame.traversed,
            frags_raster: self.frame.frags_raster,
            frags_zst: self.frame.frags_zst,
            frags_shaded: self.frame.frags_shaded,
            frags_blended: self.frame.frags_blended,
            quads_raster: self.frame.quads_raster,
            quads_hz_removed: self.frame.quads_hz_removed,
            quads_zst_removed: self.frame.quads_zst_removed,
            quads_alpha_removed: self.frame.quads_alpha_removed,
            tex_requests: self.frame.tex_requests,
            bilinear_samples: self.frame.bilinear_samples,
            z_accesses: z.accesses,
            z_hits: z.hits,
            color_accesses: color.accesses,
            color_hits: color.hits,
            tex_l0_accesses: l0.0,
            tex_l0_hits: l0.1,
            tex_l1_accesses: l1.0,
            tex_l1_hits: l1.1,
            bw_read: parts.iter().map(|c| c.read).collect(),
            bw_written: parts.iter().map(|c| c.written).collect(),
        }
    }

    fn write_back_z_line(&mut self, line: u64) {
        // Writebacks already counted by flush_collect; size them here.
        let (x, y) = crate::fragment::block_pixel(line, self.zb_addr, self.config.width);
        let state = if self.config.z_compression {
            classify_z_block(&self.zbuffer.block_depths(x, y))
        } else {
            BlockState::Uncompressed
        };
        self.z_dir.set_state_at(x, y, state);
        self.mem.write(MemClient::ZStencil, state.transfer_bytes(256).max(64));
    }

    fn write_back_color_line(&mut self, line: u64) {
        let (x, y) = crate::fragment::block_pixel(line, self.cb_addr, self.config.width);
        let state = if self.config.color_compression {
            classify_color_block(&self.colorbuffer.block_colors(x, y))
        } else {
            BlockState::Uncompressed
        };
        self.color_dir.set_state_at(x, y, state);
        self.mem.write(MemClient::Color, state.transfer_bytes(256).max(64));
    }
}

impl Gpu {
    /// Executes one command; classified faults bubble up as [`SimError`].
    fn execute(&mut self, command: &Command) -> Result<(), SimError> {
        // Commit the deferred fragment flush before any command that
        // observes its effects. A fault it surfaces here classifies this
        // command as faulted — under the pipeline's strict-policy gate
        // that is the only divergence from the synchronous path, and only
        // on streams that fault during fragment work.
        if Self::needs_drain(command) {
            self.drain_pending()?;
        }
        match command {
            Command::CreateVertexBuffer { id, layout, data } => {
                let bytes = (data.len() / layout.attributes.max(1) as usize) as u64
                    * layout.stride_bytes as u64;
                self.check_alloc(bytes.max(1))?;
                let addr = self.vram.alloc(bytes.max(1), 256);
                self.vertex_buffers
                    .insert(*id, VertexBufferRes { layout: *layout, data: data.clone(), addr });
                // Upload: CP writes the buffer into GPU memory.
                self.mem.write(MemClient::CommandProcessor, bytes);
                self.creation_log.push(command.clone());
            }
            Command::CreateIndexBuffer { id, indices } => {
                let bytes = indices.total_bytes();
                self.check_alloc(bytes.max(1))?;
                let addr = self.vram.alloc(bytes.max(1), 256);
                self.index_buffers.insert(*id, IndexBufferRes { indices: indices.clone(), addr });
                self.mem.write(MemClient::CommandProcessor, bytes);
                self.creation_log.push(command.clone());
            }
            Command::CreateTexture { id, image, format, mipmaps, sampler } => {
                self.check_alloc(Texture::footprint_bytes(image, *format, *mipmaps))?;
                let tex = Texture::from_image(image, *format, *mipmaps, &mut self.vram);
                self.mem.write(MemClient::CommandProcessor, tex.memory_bytes());
                self.textures.insert(*id, (tex, *sampler));
                self.creation_log.push(command.clone());
            }
            Command::CreateProgram { id, program } => {
                self.programs.insert(*id, program.clone());
                self.creation_log.push(command.clone());
            }
            Command::State(state) => match state {
                StateCommand::Depth(d) => self.depth_state = *d,
                StateCommand::StencilFront(s) => self.stencil_front = *s,
                StateCommand::StencilBack(s) => self.stencil_back = *s,
                StateCommand::Cull(c) => self.cull = *c,
                StateCommand::FrontFaceWinding(w) => self.front_face = *w,
                StateCommand::Blend(b) => self.blend = *b,
                StateCommand::ColorMask(m) => self.color_mask = *m,
                StateCommand::AlphaTest { enabled, reference } => {
                    self.alpha_test = enabled.then_some(*reference);
                }
                StateCommand::BindTexture { unit, texture } => {
                    self.tex_bindings.insert(*unit, *texture);
                }
                StateCommand::BindPrograms { vertex, fragment } => {
                    if self.bound_vertex != Some(*vertex) {
                        self.bound_vertex = Some(*vertex);
                        // New vertex program invalidates cached transforms.
                        self.vcache.invalidate();
                    }
                    self.bound_fragment = Some(*fragment);
                }
                StateCommand::VertexConstants { base, values } => {
                    Self::check_constants(
                        self.bound_vertex,
                        *base,
                        values.len(),
                        self.vs_machine.constant_count(),
                    )?;
                    for (i, v) in values.iter().enumerate() {
                        self.vs_machine.set_constant(*base as usize + i, *v);
                    }
                    // Constants change transformed results.
                    self.vcache.invalidate();
                }
                StateCommand::FragmentConstants { base, values } => {
                    Self::check_constants(
                        self.bound_fragment,
                        *base,
                        values.len(),
                        self.fs_machine.constant_count(),
                    )?;
                    for (i, v) in values.iter().enumerate() {
                        self.fs_machine.set_constant(*base as usize + i, *v);
                    }
                }
            },
            Command::Clear { mask, color, depth, stencil } => {
                self.clear(*mask, *color, *depth, *stencil);
                if let Some(t) = self.telemetry.as_mut() {
                    let tick = self.tick;
                    t.record_clear(tick);
                }
            }
            Command::Draw { vertex_buffer, index_buffer, primitive, first, count } => {
                // Different draws reference different vertex ranges; the
                // post-transform cache is index-tagged per buffer, so flush
                // between draws of different buffers (conservative).
                let r = self.draw(*vertex_buffer, *index_buffer, *primitive, *first, *count);
                self.vcache.invalidate();
                r?;
            }
            Command::EndFrame => self.end_frame(),
        }
        // Injected memory corruption observed while executing this command
        // classifies the command as faulted.
        if let Some((client, count)) = self.mem.take_injected_faults() {
            return Err(SimError::MemoryFault { client, count });
        }
        Ok(())
    }

    /// Executes one command, reporting classified faults.
    ///
    /// The configured [`FaultPolicy`] decides what `Err` means for the
    /// replay: under [`FaultPolicy::Strict`] every fault is surfaced and
    /// the offending command is dropped; under the lenient policies
    /// faults are absorbed (`Ok`), counted in [`SimStats`], and work is
    /// dropped at batch or frame granularity instead.
    pub fn try_consume(&mut self, command: &Command) -> Result<(), SimError> {
        // One work tick per consumed command — charged against the budget
        // token and advanced on the telemetry clock alike, skip or no skip,
        // so the clock is a pure function of the command stream.
        self.tick += 1;
        if let Some(t) = self.telemetry.as_mut() {
            t.record_command();
        }
        // A tripped cancellation token stops all execution (no CP fetch,
        // no statistics): the supervisor has already decided this run's
        // results are void, so the only job left is to drain the stream
        // cheaply and hand control back to the replay loop.
        if let Some(tok) = &self.cancel {
            tok.charge(1);
            if tok.is_cancelled() {
                return Ok(());
            }
        }
        if self.skip_frame {
            if matches!(command, Command::EndFrame) {
                self.skip_frame = false;
                // The frame still retires so the run's frame count is
                // stable under SkipFrame.
            } else {
                // Rest of the frame is dropped: no CP fetch, no execution.
                return Ok(());
            }
        }
        // Command processor fetch traffic.
        self.mem
            .read(MemClient::CommandProcessor, self.config.cp_bytes_per_command as u64);
        match self.execute(command) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.stats.record_fault(e.kind());
                if self.first_error.is_none() {
                    self.first_error = Some(e.clone());
                }
                match self.config.fault_policy {
                    FaultPolicy::Strict => Err(e),
                    FaultPolicy::SkipBatch => {
                        self.frame.dropped_batches += 1;
                        Ok(())
                    }
                    FaultPolicy::SkipFrame => {
                        if !matches!(command, Command::EndFrame) {
                            self.skip_frame = true;
                        }
                        self.frame.dropped_frames += 1;
                        Ok(())
                    }
                }
            }
        }
    }
}

impl CommandSink for Gpu {
    fn consume(&mut self, command: &Command) {
        // The infallible path: faults are still classified and counted
        // (see [`Gpu::first_error`]), the command stream keeps flowing.
        let _ = self.try_consume(command);
    }
}

// ---- checkpoint / restart ---------------------------------------------

fn block_state_tag(s: BlockState) -> u8 {
    match s {
        BlockState::FastCleared => 0,
        BlockState::Compressed25 => 1,
        BlockState::Compressed50 => 2,
        BlockState::Uncompressed => 3,
    }
}

fn block_state_from(tag: u8) -> Result<BlockState, CheckpointError> {
    Ok(match tag {
        0 => BlockState::FastCleared,
        1 => BlockState::Compressed25,
        2 => BlockState::Compressed50,
        3 => BlockState::Uncompressed,
        _ => return Err(CheckpointError::Corrupt("invalid block compression state")),
    })
}

fn write_cache(e: &mut Enc, cache: &Cache) {
    let (lines, clock, stats) = cache.snapshot();
    e.u32(lines.len() as u32);
    for l in lines {
        e.u64(l.tag);
        e.u8(l.valid as u8 | (l.dirty as u8) << 1);
        e.u64(l.stamp);
    }
    e.u64(clock);
    e.u64(stats.accesses);
    e.u64(stats.hits);
    e.u64(stats.fills);
    e.u64(stats.writebacks);
}

fn read_cache(d: &mut Dec<'_>, config: CacheConfig) -> Result<Cache, CheckpointError> {
    let n = d.u32()? as usize;
    if n != config.ways * config.sets {
        return Err(CheckpointError::Corrupt("cache geometry differs from configuration"));
    }
    let mut lines = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = d.u64()?;
        let flags = d.u8()?;
        let stamp = d.u64()?;
        lines.push(LineState { tag, valid: flags & 1 != 0, dirty: flags & 2 != 0, stamp });
    }
    let clock = d.u64()?;
    let stats = CacheStats {
        accesses: d.u64()?,
        hits: d.u64()?,
        fills: d.u64()?,
        writebacks: d.u64()?,
    };
    Ok(Cache::restore(config, &lines, clock, stats))
}

fn read_opt_u32(d: &mut Dec<'_>) -> Result<Option<u32>, CheckpointError> {
    Ok(match d.u8()? {
        0 => None,
        _ => Some(d.u32()?),
    })
}

fn read_exec_stats(d: &mut Dec<'_>) -> Result<ExecStats, CheckpointError> {
    Ok(ExecStats { instructions: d.u64()?, texture_instructions: d.u64()? })
}

impl Gpu {
    /// Serializes the complete GPU state as a `GWCK` checkpoint blob.
    ///
    /// Only valid at a frame boundary (immediately after consuming an
    /// [`Command::EndFrame`]): in-flight per-frame state is then empty by
    /// construction and is not serialized. A GPU rebuilt from the blob with
    /// [`Gpu::restore_checkpoint`] replays the remaining trace to
    /// bit-identical statistics.
    pub fn save_checkpoint(&self) -> Vec<u8> {
        debug_assert_eq!(
            self.frame,
            FrameSimStats::default(),
            "checkpoints are only taken at frame boundaries"
        );
        debug_assert!(self.vcache.is_empty(), "vertex cache drains at frame boundaries");
        debug_assert!(self.pending.is_none(), "draw pipeline drains at frame boundaries");
        debug_assert_eq!(self.vs_prev, *self.vs_machine.stats());
        debug_assert_eq!(self.fs_prev, *self.fs_machine.stats());

        let mut w = SectionWriter::new();

        // CONF: geometry + stripe layout + allocator fingerprint,
        // validated on restore. The stripe layout shapes the cache records
        // in FRAM (and the statistics a resumed run will produce), so a
        // restore under a different layout must fail loudly. The *thread*
        // count is deliberately not recorded: any worker count replays a
        // checkpoint to bit-identical results.
        let mut conf = Enc::default();
        conf.u32(self.config.width);
        conf.u32(self.config.height);
        conf.u32(self.config.stripe_rows);
        conf.u64(self.vram.allocated_bytes());
        conf.u32(self.stats.frames().len() as u32);
        // The work-tick clock, so a resumed run's telemetry timebase
        // continues instead of restarting at zero. The clock advances
        // whether or not telemetry is attached, so this value — and hence
        // the checkpoint bytes — never depends on observation.
        conf.u64(self.tick);
        w.section(*b"CONF", &conf.buf);

        // RSRC: the resource-creation log (GWCT command records).
        w.section(*b"RSRC", &encode_commands(&self.creation_log));

        // BIND: raw program bindings, then the remaining bound state as
        // synthesized state commands replayed through the normal path.
        let mut bind = Enc::default();
        for bound in [self.bound_vertex, self.bound_fragment] {
            match bound {
                Some(id) => {
                    bind.u8(1);
                    bind.u32(id);
                }
                None => bind.u8(0),
            }
        }
        let mut states = vec![
            Command::State(StateCommand::Depth(self.depth_state)),
            Command::State(StateCommand::StencilFront(self.stencil_front)),
            Command::State(StateCommand::StencilBack(self.stencil_back)),
            Command::State(StateCommand::Cull(self.cull)),
            Command::State(StateCommand::FrontFaceWinding(self.front_face)),
            Command::State(StateCommand::Blend(self.blend)),
            Command::State(StateCommand::ColorMask(self.color_mask)),
            Command::State(StateCommand::AlphaTest {
                enabled: self.alpha_test.is_some(),
                reference: self.alpha_test.unwrap_or(0.0),
            }),
        ];
        let mut units: Vec<(u8, u32)> = self.tex_bindings.iter().map(|(&u, &t)| (u, t)).collect();
        units.sort_unstable();
        for (unit, texture) in units {
            states.push(Command::State(StateCommand::BindTexture { unit, texture }));
        }
        states.push(Command::State(StateCommand::VertexConstants {
            base: 0,
            values: (0..self.vs_machine.constant_count()).map(|i| self.vs_machine.constant(i)).collect(),
        }));
        states.push(Command::State(StateCommand::FragmentConstants {
            base: 0,
            values: (0..self.fs_machine.constant_count()).map(|i| self.fs_machine.constant(i)).collect(),
        }));
        bind.bytes(&encode_commands(&states));
        w.section(*b"BIND", &bind.buf);

        // STAT: per-frame counters, fault counters, shader exec totals.
        let mut stat = Enc::default();
        stat.u32(self.stats.frames().len() as u32);
        for f in self.stats.frames() {
            for c in f.to_counters() {
                stat.u64(c);
            }
        }
        for c in self.stats.raw_fault_counts() {
            stat.u64(c);
        }
        for s in [self.vs_machine.stats(), self.fs_machine.stats()] {
            stat.u64(s.instructions);
            stat.u64(s.texture_instructions);
        }
        w.section(*b"STAT", &stat.buf);

        // MEMC: per-frame memory traffic history.
        let mut memc = Enc::default();
        memc.u32(self.mem.frames().len() as u32);
        for f in self.mem.frames() {
            for c in MemClient::ALL {
                let t = f.client(c);
                memc.u64(t.read);
                memc.u64(t.written);
            }
        }
        w.section(*b"MEMC", &memc.buf);

        // FRAM: framebuffer surfaces, HZ, compression directories, caches.
        let mut fram = Enc::default();
        for &p in self.colorbuffer.raw_pixels() {
            fram.u32(p);
        }
        let (depth, stencil) = self.zbuffer.planes();
        for &z in depth {
            fram.f32(z);
        }
        fram.bytes(stencil);
        let (max_z, dirty, tested, rejected) = self.hz.snapshot();
        for &z in max_z {
            fram.f32(z);
        }
        for &d in dirty {
            fram.u8(d as u8);
        }
        fram.u64(tested);
        fram.u64(rejected);
        for dir in [&self.z_dir, &self.color_dir] {
            for &s in dir.states() {
                fram.u8(block_state_tag(s));
            }
        }
        fram.u32(self.stripes.len() as u32);
        for s in &self.stripes {
            let (l0, l1) = s.texunit.caches();
            for cache in [&s.z_cache, &s.color_cache, l0, l1] {
                write_cache(&mut fram, cache);
            }
        }
        w.section(*b"FRAM", &fram.buf);

        w.finish()
    }

    /// Rebuilds a GPU from a [`Gpu::save_checkpoint`] blob.
    ///
    /// `config` must match the configuration the checkpoint was taken
    /// under (resolution and cache geometry are validated). Resources are
    /// rebuilt by replaying the creation log, which reproduces the exact
    /// VRAM layout; everything else is restored from the blob. The
    /// [`gwc_mem::MemoryController`] fault injector is *not* serialized —
    /// re-arm it after restoring if the run used injection.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] on framing, CRC, or consistency
    /// failures.
    pub fn restore_checkpoint(config: GpuConfig, bytes: &[u8]) -> Result<Gpu, CheckpointError> {
        let sections = checkpoint::read_sections(bytes)?;

        let mut conf = Dec::new(checkpoint::require(&sections, *b"CONF")?);
        if (conf.u32()?, conf.u32()?) != (config.width, config.height) {
            return Err(CheckpointError::Corrupt("checkpoint resolution differs from configuration"));
        }
        if conf.u32()? != config.stripe_rows {
            return Err(CheckpointError::Corrupt(
                "checkpoint stripe layout differs from configuration",
            ));
        }
        let vram_allocated = conf.u64()?;
        let frame_count = conf.u32()? as usize;
        let tick = conf.u64()?;

        let mut gpu = Gpu::new(config);
        // Resource/state replay below goes through `execute`, which does
        // not touch the work-tick clock, so restoring it first is safe.
        gpu.tick = tick;

        // Resources: replay the creation log through the normal execution
        // path; deterministic bump allocation reproduces every address.
        let log = decode_commands(checkpoint::require(&sections, *b"RSRC")?)
            .map_err(|_| CheckpointError::Corrupt("resource log failed to decode"))?;
        for c in &log {
            if !matches!(
                c,
                Command::CreateVertexBuffer { .. }
                    | Command::CreateIndexBuffer { .. }
                    | Command::CreateTexture { .. }
                    | Command::CreateProgram { .. }
            ) {
                return Err(CheckpointError::Corrupt("non-creation command in resource log"));
            }
            gpu.execute(c)
                .map_err(|_| CheckpointError::Corrupt("resource log failed to replay"))?;
        }
        if gpu.vram.allocated_bytes() != vram_allocated {
            return Err(CheckpointError::Corrupt("VRAM layout mismatch after resource replay"));
        }

        // Bound state.
        let bind_payload = checkpoint::require(&sections, *b"BIND")?;
        let mut bind = Dec::new(bind_payload);
        let bound_vertex = read_opt_u32(&mut bind)?;
        let bound_fragment = read_opt_u32(&mut bind)?;
        let states = decode_commands(bind.rest())
            .map_err(|_| CheckpointError::Corrupt("bound state failed to decode"))?;
        for c in &states {
            if !matches!(c, Command::State(_)) {
                return Err(CheckpointError::Corrupt("non-state command in bound-state log"));
            }
            gpu.execute(c)
                .map_err(|_| CheckpointError::Corrupt("bound state failed to replay"))?;
        }
        gpu.bound_vertex = bound_vertex;
        gpu.bound_fragment = bound_fragment;
        gpu.vcache.invalidate();

        // Statistics.
        let mut stat = Dec::new(checkpoint::require(&sections, *b"STAT")?);
        let n = stat.u32()? as usize;
        if n != frame_count {
            return Err(CheckpointError::Corrupt("frame count disagrees between sections"));
        }
        let mut frames = Vec::with_capacity(n);
        let mut counters = vec![0u64; FrameSimStats::FIELD_COUNT];
        for _ in 0..n {
            for c in counters.iter_mut() {
                *c = stat.u64()?;
            }
            frames.push(FrameSimStats::from_counters(&counters));
        }
        let mut faults = [0u64; FaultKind::ALL.len()];
        for f in &mut faults {
            *f = stat.u64()?;
        }
        gpu.stats = SimStats::restore(frames, faults);
        let vs = read_exec_stats(&mut stat)?;
        let fs = read_exec_stats(&mut stat)?;
        gpu.vs_machine.restore_stats(vs);
        gpu.fs_machine.restore_stats(fs);
        gpu.vs_prev = vs;
        gpu.fs_prev = fs;

        // Memory traffic history.
        let mut memc = Dec::new(checkpoint::require(&sections, *b"MEMC")?);
        let n = memc.u32()? as usize;
        let mut mem_frames = Vec::with_capacity(n);
        for _ in 0..n {
            let mut clients = [ClientTraffic::default(); 6];
            for c in &mut clients {
                c.read = memc.u64()?;
                c.written = memc.u64()?;
            }
            mem_frames.push(FrameTraffic::from_parts(clients));
        }
        gpu.mem = MemoryController::restore(mem_frames);

        // Framebuffer state.
        let mut fram = Dec::new(checkpoint::require(&sections, *b"FRAM")?);
        let n_px = (config.width * config.height) as usize;
        let mut pixels = Vec::with_capacity(n_px);
        for _ in 0..n_px {
            pixels.push(fram.u32()?);
        }
        gpu.colorbuffer = ColorBuffer::restore(config.width, config.height, pixels);
        let mut depth = Vec::with_capacity(n_px);
        for _ in 0..n_px {
            depth.push(fram.f32()?);
        }
        let stencil = fram.take(n_px)?.to_vec();
        gpu.zbuffer = DepthStencilBuffer::restore(config.width, config.height, depth, stencil);
        let n_blocks = (config.width.div_ceil(8) * config.height.div_ceil(8)) as usize;
        let mut max_z = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            max_z.push(fram.f32()?);
        }
        let mut dirty = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            dirty.push(fram.u8()? != 0);
        }
        let tested = fram.u64()?;
        let rejected = fram.u64()?;
        gpu.hz =
            HzBuffer::restore(config.width, config.height, max_z, dirty, tested, rejected);
        let read_dir = |fram: &mut Dec<'_>| -> Result<CompressionDirectory, CheckpointError> {
            let mut states = Vec::with_capacity(n_blocks);
            for _ in 0..n_blocks {
                states.push(block_state_from(fram.u8()?)?);
            }
            Ok(CompressionDirectory::restore(config.width, config.height, states))
        };
        gpu.z_dir = read_dir(&mut fram)?;
        gpu.color_dir = read_dir(&mut fram)?;
        if fram.u32()? as usize != gpu.stripes.len() {
            return Err(CheckpointError::Corrupt("stripe count differs from configuration"));
        }
        for i in 0..gpu.stripes.len() {
            let z = read_cache(&mut fram, config.z_cache)?;
            let color = read_cache(&mut fram, config.color_cache)?;
            let l0 = read_cache(&mut fram, config.tex_l0)?;
            let l1 = read_cache(&mut fram, config.tex_l1)?;
            let s = &mut gpu.stripes[i];
            s.z_cache = z;
            s.color_cache = color;
            s.texunit.restore_caches(l0, l1);
        }
        if !fram.done() {
            return Err(CheckpointError::Corrupt("trailing bytes in framebuffer section"));
        }

        Ok(gpu)
    }
}
