//! The GPU: command execution through the full pipeline.

use std::collections::HashMap;

use gwc_api::{ClearMask, Command, CommandSink, Indices, StateCommand, VertexLayout};
use gwc_math::Vec4;
use gwc_mem::compress::{classify_color_block, classify_z_block, BlockState,
                        CompressionDirectory};
use gwc_mem::{tiled_offset, AccessKind, AddressSpace, Cache, CacheStats, MemClient,
              MemoryController};
use gwc_raster::{clip_near, rasterize, BlendState, ClipResult, CompareFunc, CullMode,
                 DepthStencilBuffer, DepthState, FrontFace, HzBuffer, Quad, RasterStats,
                 ShadedVertex, StencilOp, StencilState, TriangleSetup, Viewport, ZResult,
                 MAX_VARYINGS};
use gwc_shader::{ExecStats, Program, ProgramKind, ShaderMachine};
use gwc_texture::{SamplerState, Texture};

use crate::colorbuffer::ColorBuffer;
use crate::config::GpuConfig;
use crate::stats::{FrameSimStats, SimStats};
use crate::streamer::VertexCache;
use crate::texunit::{BoundSampler, TextureUnit};

#[derive(Debug)]
struct VertexBufferRes {
    layout: VertexLayout,
    data: Vec<Vec4>,
    #[allow(dead_code)]
    addr: u64,
}

#[derive(Debug)]
struct IndexBufferRes {
    indices: Indices,
    #[allow(dead_code)]
    addr: u64,
}

/// The behavioural GPU simulator.
///
/// Construct one with a [`GpuConfig`], then feed it a command stream
/// (it implements [`CommandSink`], so a [`gwc_api::Trace`] replays into it
/// directly). Statistics accumulate per frame in [`Gpu::stats`].
///
/// ```
/// use gwc_api::{Command, CommandSink};
/// use gwc_pipeline::{Gpu, GpuConfig};
///
/// let mut gpu = Gpu::new(GpuConfig::r520(64, 64));
/// gpu.consume(&Command::EndFrame);
/// assert_eq!(gpu.stats().frames().len(), 1);
/// ```
#[derive(Debug)]
pub struct Gpu {
    config: GpuConfig,
    viewport: Viewport,
    vram: AddressSpace,

    // Resources.
    vertex_buffers: HashMap<u32, VertexBufferRes>,
    index_buffers: HashMap<u32, IndexBufferRes>,
    textures: HashMap<u32, (Texture, SamplerState)>,
    programs: HashMap<u32, Program>,

    // Bound state.
    tex_bindings: HashMap<u8, u32>,
    bound_vertex: Option<u32>,
    bound_fragment: Option<u32>,
    depth_state: DepthState,
    stencil_front: StencilState,
    stencil_back: StencilState,
    cull: CullMode,
    front_face: FrontFace,
    blend: BlendState,
    color_mask: bool,
    alpha_test: Option<f32>,

    // Execution units.
    vs_machine: ShaderMachine,
    fs_machine: ShaderMachine,
    vcache: VertexCache,
    texunit: TextureUnit,

    // Framebuffer state.
    zbuffer: DepthStencilBuffer,
    hz: HzBuffer,
    z_dir: CompressionDirectory,
    z_cache: Cache,
    zb_addr: u64,
    colorbuffer: ColorBuffer,
    color_dir: CompressionDirectory,
    color_cache: Cache,
    cb_addr: u64,

    // Memory & statistics.
    mem: MemoryController,
    frame: FrameSimStats,
    stats: SimStats,
    vs_prev: ExecStats,
    fs_prev: ExecStats,
}

impl Gpu {
    /// Creates a GPU with cleared framebuffers.
    pub fn new(config: GpuConfig) -> Self {
        let viewport = Viewport::new(config.width, config.height);
        let mut vram = AddressSpace::new();
        let fb_bytes = config.width as u64 * config.height as u64 * 4;
        let zb_addr = vram.alloc(fb_bytes, 256);
        let cb_addr = vram.alloc(fb_bytes, 256);
        Gpu {
            viewport,
            vram,
            vertex_buffers: HashMap::new(),
            index_buffers: HashMap::new(),
            textures: HashMap::new(),
            programs: HashMap::new(),
            tex_bindings: HashMap::new(),
            bound_vertex: None,
            bound_fragment: None,
            depth_state: DepthState::default(),
            stencil_front: StencilState::default(),
            stencil_back: StencilState::default(),
            cull: CullMode::default(),
            front_face: FrontFace::default(),
            blend: BlendState::default(),
            color_mask: true,
            alpha_test: None,
            vs_machine: ShaderMachine::new(),
            fs_machine: ShaderMachine::new(),
            vcache: VertexCache::new(config.vertex_cache_entries),
            texunit: TextureUnit::new(&config),
            zbuffer: DepthStencilBuffer::new(config.width, config.height),
            hz: HzBuffer::new(config.width, config.height),
            z_dir: CompressionDirectory::new(config.width, config.height),
            z_cache: Cache::new(config.z_cache),
            zb_addr,
            colorbuffer: ColorBuffer::new(config.width, config.height),
            color_dir: CompressionDirectory::new(config.width, config.height),
            color_cache: Cache::new(config.color_cache),
            cb_addr,
            mem: MemoryController::new(),
            frame: FrameSimStats::default(),
            stats: SimStats::new(),
            vs_prev: ExecStats::default(),
            fs_prev: ExecStats::default(),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Whole-run simulator statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Memory controller (per-frame traffic history).
    pub fn memory(&self) -> &MemoryController {
        &self.mem
    }

    /// Z & stencil cache statistics (Table XIV).
    pub fn z_cache_stats(&self) -> &CacheStats {
        self.z_cache.stats()
    }

    /// Color cache statistics (Table XIV).
    pub fn color_cache_stats(&self) -> &CacheStats {
        self.color_cache.stats()
    }

    /// The texture unit (cache + filtering statistics).
    pub fn texture_unit(&self) -> &TextureUnit {
        &self.texunit
    }

    /// The rendered color buffer.
    pub fn framebuffer(&self) -> &ColorBuffer {
        &self.colorbuffer
    }

    /// The depth/stencil buffer.
    pub fn depth_buffer(&self) -> &DepthStencilBuffer {
        &self.zbuffer
    }

    /// GPU memory allocated for resources + framebuffers.
    pub fn vram_allocated(&self) -> u64 {
        self.vram.allocated_bytes()
    }

    // ---- pipeline internals ------------------------------------------

    /// Fetches a shaded vertex through the post-transform cache.
    fn fetch_vertex(&mut self, vb: u32, index: u32, program: &Program) -> ShadedVertex {
        self.frame.indices += 1;
        if let Some(v) = self.vcache.lookup(index) {
            self.frame.vcache_hits += 1;
            return v;
        }
        let buf = &self.vertex_buffers[&vb];
        let attrs = buf.layout.attributes as usize;
        let base = index as usize * attrs;
        let inputs = &buf.data[base..base + attrs];
        // Vertex attribute fetch from GPU memory.
        self.mem.read(MemClient::Vertex, buf.layout.stride_bytes as u64);
        let outputs = self.vs_machine.run_vertex(program, inputs);
        let mut varyings = [Vec4::ZERO; MAX_VARYINGS];
        varyings.copy_from_slice(&outputs[1..1 + MAX_VARYINGS]);
        let v = ShadedVertex { clip: outputs[0], varyings };
        self.vcache.insert(index, v);
        self.frame.shaded_vertices += 1;
        v
    }

    /// Z & stencil cache access for one quad; returns nothing but accounts
    /// fills and compressed writebacks.
    fn z_cache_access(&mut self, x: u32, y: u32, write: bool) {
        let addr = self.zb_addr + tiled_offset(x, y, self.config.width, 4);
        let kind = if write { AccessKind::Write } else { AccessKind::Read };
        let out = self.z_cache.access_detailed(addr, kind);
        if !out.hit {
            let state = if self.config.z_compression {
                self.z_dir.state_at(x, y)
            } else {
                BlockState::Uncompressed
            };
            let bytes = state.transfer_bytes(256);
            if bytes > 0 {
                self.mem.read(MemClient::ZStencil, bytes);
            }
        }
        if let Some(line) = out.evicted_dirty_line {
            self.write_back_z_line(line);
        }
    }


    fn color_cache_access(&mut self, x: u32, y: u32, write: bool) {
        let addr = self.cb_addr + tiled_offset(x, y, self.config.width, 4);
        let kind = if write { AccessKind::Write } else { AccessKind::Read };
        let out = self.color_cache.access_detailed(addr, kind);
        if !out.hit {
            let state = if self.config.color_compression {
                self.color_dir.state_at(x, y)
            } else {
                BlockState::Uncompressed
            };
            let bytes = state.transfer_bytes(256);
            if bytes > 0 {
                self.mem.read(MemClient::Color, bytes);
            }
        }
        if let Some(line) = out.evicted_dirty_line {
            self.write_back_color_line(line);
        }
    }

    /// Maps a framebuffer line address back to the pixel of its 8×8 block.
    fn block_pixel(&self, line_addr: u64, base: u64) -> (u32, u32) {
        let block = (line_addr - base) / 256;
        let blocks_x = self.config.width.div_ceil(8) as u64;
        let bx = (block % blocks_x) as u32;
        let by = (block / blocks_x) as u32;
        (bx * 8, by * 8)
    }

    fn draw(
        &mut self,
        vertex_buffer: u32,
        index_buffer: u32,
        primitive: gwc_raster::PrimitiveType,
        first: u32,
        count: u32,
    ) {
        let (Some(vp_id), Some(fp_id)) = (self.bound_vertex, self.bound_fragment) else {
            return; // no programs bound: draw is ignored
        };
        let vertex_program = self.programs[&vp_id].clone();
        let fragment_program = self.programs[&fp_id].clone();
        debug_assert_eq!(vertex_program.kind(), ProgramKind::Vertex);
        debug_assert_eq!(fragment_program.kind(), ProgramKind::Fragment);

        // Index fetch traffic (Vertex memory client reads the index list).
        let bpi = self.index_buffers[&index_buffer].indices.bytes_per_index() as u64;
        self.mem.read(MemClient::Vertex, bpi * count as u64);

        // Early-z legality for this draw.
        let early_z_ok = self.config.early_z
            && self.depth_state.test
            && !fragment_program.uses_kill()
            && !fragment_program.writes_depth()
            && self.alpha_test.is_none();
        // HZ legality: rejectable depth func and no z-fail/fail-dependent
        // stencil side effects.
        let stencil_sensitive = |s: &StencilState| {
            s.test && (s.zfail != StencilOp::Keep || s.fail != StencilOp::Keep)
        };
        let hz_ok = self.config.hierarchical_z
            && self.depth_state.test
            && matches!(
                self.depth_state.func,
                CompareFunc::Less | CompareFunc::LessEqual | CompareFunc::Equal
            )
            && !stencil_sensitive(&self.stencil_front)
            && !stencil_sensitive(&self.stencil_back);

        let tri_count = primitive.triangle_count(count as usize);
        for t in 0..tri_count {
            let (i0, i1, i2) = primitive.triangle_indices(t);
            let fetch = |gpu: &mut Gpu, pos: usize| {
                let idx = gpu.index_buffers[&index_buffer].indices.get(first as usize + pos);
                gpu.fetch_vertex(vertex_buffer, idx, &vertex_program)
            };
            let v0 = fetch(self, i0);
            let v1 = fetch(self, i1);
            let v2 = fetch(self, i2);
            self.frame.assembled += 1;

            match clip_near(&[v0, v1, v2]) {
                ClipResult::Rejected => {
                    self.frame.clipped += 1;
                }
                ClipResult::Accepted => {
                    self.setup_and_rasterize(&[v0, v1, v2], &fragment_program, early_z_ok, hz_ok, true);
                }
                ClipResult::Clipped(tris) => {
                    for tri in &tris {
                        self.setup_and_rasterize(tri, &fragment_program, early_z_ok, hz_ok, false);
                    }
                }
            }
        }
    }

    fn setup_and_rasterize(
        &mut self,
        tri: &[ShadedVertex; 3],
        fragment_program: &Program,
        early_z_ok: bool,
        hz_ok: bool,
        count_cull: bool,
    ) {
        let Some(setup) = TriangleSetup::new(tri, &self.viewport) else {
            // Degenerate / zero-area: discarded at setup.
            if count_cull {
                self.frame.culled += 1;
            }
            return;
        };
        if setup.is_culled(self.cull, self.front_face) {
            if count_cull {
                self.frame.culled += 1;
            }
            return;
        }
        self.frame.traversed += 1;
        let front_facing = setup.is_front_facing(self.front_face);
        let stencil = if front_facing { self.stencil_front } else { self.stencil_back };

        let mut raster_stats = RasterStats::default();
        let mut quads: Vec<Quad> = Vec::new();
        rasterize(&setup, &self.viewport, &mut raster_stats, &mut |q| quads.push(*q));
        self.frame.frags_raster += raster_stats.fragments;
        self.frame.quads_raster += raster_stats.quads;
        self.frame.quads_complete_raster += raster_stats.complete_quads;

        for quad in &quads {
            self.process_quad(quad, &setup, fragment_program, &stencil, early_z_ok, hz_ok);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn process_quad(
        &mut self,
        quad: &Quad,
        setup: &TriangleSetup,
        fragment_program: &Program,
        stencil: &StencilState,
        early_z_ok: bool,
        hz_ok: bool,
    ) {
        // --- Hierarchical Z ---
        if hz_ok {
            let mut min_z = f32::INFINITY;
            for lane in 0..4 {
                if quad.coverage[lane] {
                    min_z = min_z.min(quad.depth[lane]);
                }
            }
            if !self.hz.test_quad(quad.x, quad.y, min_z, self.depth_state.func, &self.zbuffer) {
                self.frame.quads_hz_removed += 1;
                return;
            }
        }

        let covered: [bool; 4] = quad.coverage;
        let mut live = covered;

        // --- Early Z & stencil ---
        if early_z_ok {
            if !self.run_zstencil(quad, &mut live, stencil) {
                return;
            }
            // Color writes masked off and all tests already done: the quad
            // is dropped *before* shading (stencil-volume quads reach this
            // point in the Doom3-engine games — Table XI's shaded overdraw
            // excludes them while Table IX counts them as "Color Mask").
            if !self.color_mask {
                self.frame.quads_colormask += 1;
                return;
            }
        }

        // --- Fragment shading ---
        let lane_inputs: [[Vec4; MAX_VARYINGS]; 4] = std::array::from_fn(|lane| {
            let (x, y) = quad.lane_pos(lane);
            let (x, y) = (x.min(self.config.width - 1), y.min(self.config.height - 1));
            setup.varyings_at(x, y)
        });
        let input_refs: [&[Vec4]; 4] = [
            &lane_inputs[0],
            &lane_inputs[1],
            &lane_inputs[2],
            &lane_inputs[3],
        ];
        let result = {
            let mut sampler = BoundSampler {
                bindings: &self.tex_bindings,
                pool: &self.textures,
                unit: &mut self.texunit,
                mem: &mut self.mem,
            };
            self.fs_machine.run_fragment_quad(fragment_program, &input_refs, live, &mut sampler)
        };
        let shaded = live.iter().filter(|&&l| l).count() as u64;
        self.frame.frags_shaded += shaded;

        // --- Kill / alpha test ---
        let mut any_removed_by_alpha = false;
        for lane in 0..4 {
            if !live[lane] {
                continue;
            }
            if result.killed[lane] {
                live[lane] = false;
                any_removed_by_alpha = true;
                continue;
            }
            if let Some(reference) = self.alpha_test {
                if result.color[lane].w < reference {
                    live[lane] = false;
                    any_removed_by_alpha = true;
                }
            }
        }
        if live.iter().all(|&l| !l) {
            if any_removed_by_alpha {
                self.frame.quads_alpha_removed += 1;
            }
            return;
        }

        // --- Late Z & stencil ---
        if !early_z_ok {
            // Apply shader-written depth if present.
            let mut q = *quad;
            if let Some(depths) = result.depth {
                q.depth = depths;
            }
            if !self.run_zstencil_masked(&q, &mut live, stencil) {
                return;
            }
        }

        // --- Color mask ---
        if !self.color_mask {
            self.frame.quads_colormask += 1;
            return;
        }

        // --- Blend & color write ---
        // Write-allocate: the fill covers the blend's destination read too.
        self.color_cache_access(quad.x, quad.y, true);
        let mut written = 0u64;
        for lane in 0..4 {
            if !live[lane] {
                continue;
            }
            let (x, y) = quad.lane_pos(lane);
            if x >= self.config.width || y >= self.config.height {
                continue;
            }
            self.colorbuffer.write(x, y, result.color[lane], &self.blend);
            written += 1;
        }
        self.frame.frags_blended += written;
        self.frame.quads_blended += 1;
    }

    /// Z & stencil for an early-z quad (tests covered lanes).
    /// Returns `false` when the whole quad is removed.
    fn run_zstencil(&mut self, quad: &Quad, live: &mut [bool; 4], stencil: &StencilState) -> bool {
        self.run_zstencil_inner(quad, live, stencil)
    }

    /// Z & stencil after shading (lanes already masked by alpha/kill).
    fn run_zstencil_masked(
        &mut self,
        quad: &Quad,
        live: &mut [bool; 4],
        stencil: &StencilState,
    ) -> bool {
        self.run_zstencil_inner(quad, live, stencil)
    }

    fn run_zstencil_inner(
        &mut self,
        quad: &Quad,
        live: &mut [bool; 4],
        stencil: &StencilState,
    ) -> bool {
        let tested = live.iter().filter(|&&l| l).count() as u64;
        if tested == 0 {
            return false;
        }
        self.frame.frags_zst += tested;
        let writes = (self.depth_state.test && self.depth_state.write) || stencil.test;
        self.z_cache_access(quad.x, quad.y, writes);
        let mut any_pass = false;
        for lane in 0..4 {
            if !live[lane] {
                continue;
            }
            let (x, y) = quad.lane_pos(lane);
            if x >= self.config.width || y >= self.config.height {
                live[lane] = false;
                continue;
            }
            let r = self
                .zbuffer
                .test_and_update(x, y, quad.depth[lane], &self.depth_state, stencil);
            match r {
                ZResult::Pass => {
                    if self.depth_state.test && self.depth_state.write {
                        self.hz.note_depth_write(x, y);
                    }
                    any_pass = true;
                }
                ZResult::DepthFail | ZResult::StencilFail => {
                    live[lane] = false;
                }
            }
        }
        if !any_pass {
            self.frame.quads_zst_removed += 1;
            return false;
        }
        self.frame.quads_zst_survived += 1;
        if live.iter().all(|&l| l) {
            self.frame.quads_zst_complete += 1;
        }
        true
    }

    fn clear(&mut self, mask: ClearMask, color: Vec4, depth: f32, stencil: u8) {
        if mask.depth {
            self.zbuffer.clear_depth(depth);
            self.hz.clear(depth);
        }
        if mask.stencil {
            self.zbuffer.clear_stencil(stencil);
        }
        if mask.depth && mask.stencil {
            // Only a full depth+stencil clear is a fast clear of the
            // combined surface; a partial clear leaves live data, so the
            // compression state and cached lines must survive (the cache is
            // architectural state here: the cleared plane's stored values
            // are read back from the buffers, not the cache model).
            self.z_dir.fast_clear();
            self.z_cache.invalidate();
        }
        if mask.color {
            self.colorbuffer.clear(color);
            self.color_dir.fast_clear();
            self.color_cache.invalidate();
        }
    }

    fn end_frame(&mut self) {
        // Flush framebuffer caches (dirty lines become compressed
        // writebacks).
        for line in self.z_cache.flush_collect() {
            self.write_back_z_line(line);
        }
        for line in self.color_cache.flush_collect() {
            self.write_back_color_line(line);
        }
        // DAC scan-out: reads the (possibly compressed) color surface.
        let mut dac_bytes = 0u64;
        for by in 0..self.color_dir.blocks_y() {
            for bx in 0..self.color_dir.blocks_x() {
                let state = if self.config.color_compression {
                    self.color_dir.state_at(bx * 8, by * 8)
                } else {
                    BlockState::Uncompressed
                };
                dac_bytes += state.transfer_bytes(256);
            }
        }
        self.mem.read(MemClient::Dac, dac_bytes);

        // Shader execution deltas.
        let vs_now = *self.vs_machine.stats();
        let fs_now = *self.fs_machine.stats();
        self.frame.vs_instructions = vs_now.instructions - self.vs_prev.instructions;
        self.frame.fs_instructions = fs_now.instructions - self.fs_prev.instructions;
        self.frame.fs_tex_instructions =
            fs_now.texture_instructions - self.fs_prev.texture_instructions;
        self.vs_prev = vs_now;
        self.fs_prev = fs_now;

        // Texture filtering stats.
        let tex = self.texunit.take_sample_stats();
        self.frame.tex_requests = tex.requests;
        self.frame.bilinear_samples = tex.bilinear_samples;

        self.mem.end_frame();
        let frame = std::mem::take(&mut self.frame);
        self.stats.push_frame(frame);
        self.vcache.reset_stats();
    }

    fn write_back_z_line(&mut self, line: u64) {
        // Writebacks already counted by flush_collect; size them here.
        let (x, y) = self.block_pixel(line, self.zb_addr);
        let state = if self.config.z_compression {
            classify_z_block(&self.zbuffer.block_depths(x, y))
        } else {
            BlockState::Uncompressed
        };
        self.z_dir.set_state_at(x, y, state);
        self.mem.write(MemClient::ZStencil, state.transfer_bytes(256).max(64));
    }

    fn write_back_color_line(&mut self, line: u64) {
        let (x, y) = self.block_pixel(line, self.cb_addr);
        let state = if self.config.color_compression {
            classify_color_block(&self.colorbuffer.block_colors(x, y))
        } else {
            BlockState::Uncompressed
        };
        self.color_dir.set_state_at(x, y, state);
        self.mem.write(MemClient::Color, state.transfer_bytes(256).max(64));
    }
}

impl CommandSink for Gpu {
    fn consume(&mut self, command: &Command) {
        // Command processor fetch traffic.
        self.mem
            .read(MemClient::CommandProcessor, self.config.cp_bytes_per_command as u64);
        match command {
            Command::CreateVertexBuffer { id, layout, data } => {
                let bytes = (data.len() / layout.attributes.max(1) as usize) as u64
                    * layout.stride_bytes as u64;
                let addr = self.vram.alloc(bytes.max(1), 256);
                self.vertex_buffers
                    .insert(*id, VertexBufferRes { layout: *layout, data: data.clone(), addr });
                // Upload: CP writes the buffer into GPU memory.
                self.mem.write(MemClient::CommandProcessor, bytes);
            }
            Command::CreateIndexBuffer { id, indices } => {
                let bytes = indices.total_bytes();
                let addr = self.vram.alloc(bytes.max(1), 256);
                self.index_buffers.insert(*id, IndexBufferRes { indices: indices.clone(), addr });
                self.mem.write(MemClient::CommandProcessor, bytes);
            }
            Command::CreateTexture { id, image, format, mipmaps, sampler } => {
                let tex = Texture::from_image(image, *format, *mipmaps, &mut self.vram);
                self.mem.write(MemClient::CommandProcessor, tex.memory_bytes());
                self.textures.insert(*id, (tex, *sampler));
            }
            Command::CreateProgram { id, program } => {
                self.programs.insert(*id, program.clone());
            }
            Command::State(state) => match state {
                StateCommand::Depth(d) => self.depth_state = *d,
                StateCommand::StencilFront(s) => self.stencil_front = *s,
                StateCommand::StencilBack(s) => self.stencil_back = *s,
                StateCommand::Cull(c) => self.cull = *c,
                StateCommand::FrontFaceWinding(w) => self.front_face = *w,
                StateCommand::Blend(b) => self.blend = *b,
                StateCommand::ColorMask(m) => self.color_mask = *m,
                StateCommand::AlphaTest { enabled, reference } => {
                    self.alpha_test = enabled.then_some(*reference);
                }
                StateCommand::BindTexture { unit, texture } => {
                    self.tex_bindings.insert(*unit, *texture);
                }
                StateCommand::BindPrograms { vertex, fragment } => {
                    if self.bound_vertex != Some(*vertex) {
                        self.bound_vertex = Some(*vertex);
                        // New vertex program invalidates cached transforms.
                        self.vcache.invalidate();
                    }
                    self.bound_fragment = Some(*fragment);
                }
                StateCommand::VertexConstants { base, values } => {
                    for (i, v) in values.iter().enumerate() {
                        self.vs_machine.set_constant(*base as usize + i, *v);
                    }
                    // Constants change transformed results.
                    self.vcache.invalidate();
                }
                StateCommand::FragmentConstants { base, values } => {
                    for (i, v) in values.iter().enumerate() {
                        self.fs_machine.set_constant(*base as usize + i, *v);
                    }
                }
            },
            Command::Clear { mask, color, depth, stencil } => {
                self.clear(*mask, *color, *depth, *stencil);
            }
            Command::Draw { vertex_buffer, index_buffer, primitive, first, count } => {
                // Different draws reference different vertex ranges; the
                // post-transform cache is index-tagged per buffer, so flush
                // between draws of different buffers (conservative).
                self.draw(*vertex_buffer, *index_buffer, *primitive, *first, *count);
                self.vcache.invalidate();
            }
            Command::EndFrame => self.end_frame(),
        }
    }
}
