//! Simulator configuration (the paper's Table II).

use gwc_mem::CacheConfig;
use serde::{Deserialize, Serialize};

use crate::error::FaultPolicy;

/// GPU configuration, defaulting to the ATTILA setup of Table II (matched
/// to an ATI R520) with the cache geometry of Table XIV.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Render target width in pixels.
    pub width: u32,
    /// Render target height in pixels.
    pub height: u32,
    /// Post-transform vertex cache entries.
    pub vertex_cache_entries: usize,
    /// Unified shader processor count (Table II: 16).
    pub shader_units: u32,
    /// Triangle setup rate, triangles/cycle (Table II: 2).
    pub triangles_per_cycle: u32,
    /// Texture sampling rate, bilinears/cycle (Table II: 16).
    pub bilinears_per_cycle: u32,
    /// Z/stencil ROP rate, fragments/cycle (Table II: 16).
    pub z_rate: u32,
    /// Color ROP rate, fragments/cycle (Table II: 16).
    pub color_rate: u32,
    /// Memory bus width, bytes/cycle (Table II: 64).
    pub memory_bytes_per_cycle: u32,
    /// Hierarchical Z enabled.
    pub hierarchical_z: bool,
    /// Early z & stencil enabled (when the draw state allows it).
    pub early_z: bool,
    /// Z fast-clear + block compression enabled.
    pub z_compression: bool,
    /// Color fast-clear + uniform-block compression enabled.
    pub color_compression: bool,
    /// Z & stencil cache geometry.
    pub z_cache: CacheConfig,
    /// Texture L0 (decompressed) cache geometry.
    pub tex_l0: CacheConfig,
    /// Texture L1 (compressed) cache geometry.
    pub tex_l1: CacheConfig,
    /// Color cache geometry.
    pub color_cache: CacheConfig,
    /// Bytes of command-processor traffic accounted per API command.
    pub cp_bytes_per_command: u32,
    /// Reaction to classified replay faults (see [`FaultPolicy`]).
    pub fault_policy: FaultPolicy,
    /// VRAM budget for resource allocations; a command pushing the
    /// allocator past this faults with
    /// [`crate::SimError::AllocationOverflow`].
    pub vram_limit_bytes: u64,
    /// Fragment-pipeline worker threads. `0` resolves from the
    /// `GWC_THREADS` environment variable (absent → 1). Any thread count
    /// produces bit-identical results: parallelism only changes which
    /// worker executes each stripe, never the work done per stripe.
    pub threads: u32,
    /// Rows per framebuffer stripe — the unit of fragment-pipeline
    /// parallelism. Must be a non-zero multiple of 16 so rasterizer tiles,
    /// 8×8 compression blocks, and 2×2 quads never straddle a stripe.
    /// Stripe layout (and therefore statistics) depends on this value, not
    /// on the thread count.
    pub stripe_rows: u32,
    /// Geometry front-end worker threads (vertex shading and triangle
    /// setup chunks). `0` resolves from the `GWC_GEOM_THREADS` environment
    /// variable and falls back to the resolved fragment thread count. Any
    /// value produces bit-identical results: chunk shards reduce in fixed
    /// chunk order, so parallelism only changes which worker executes a
    /// chunk, never what the chunk contributes.
    pub geometry_threads: u32,
    /// Vertices/triangles per geometry chunk — the unit of geometry-stage
    /// parallelism. Must be non-zero. Pure scheduling: chunk boundaries
    /// partition fixed, batch-ordered work, and every merged statistic is
    /// an exact sum, so the chunk size is invisible in results (it is not
    /// serialized in checkpoints for the same reason).
    pub geometry_chunk: u32,
    /// Two-deep draw pipeline: overlap one draw's stripe rasterization
    /// with the next draw's geometry. Only active under
    /// [`FaultPolicy::Strict`] with fault injection disarmed (lenient
    /// policies and armed injectors silently fall back to the synchronous
    /// flush). Observation points (clears, frame retirement, checkpoints,
    /// telemetry spans) all sit behind the pipeline drain, so enabling
    /// this cannot change any committed byte.
    pub frame_pipeline: bool,
}

impl GpuConfig {
    /// The paper's configuration at a given resolution (1024×768 in the
    /// paper; tests use smaller targets).
    pub fn r520(width: u32, height: u32) -> Self {
        GpuConfig {
            width,
            height,
            vertex_cache_entries: 16,
            shader_units: 16,
            triangles_per_cycle: 2,
            bilinears_per_cycle: 16,
            z_rate: 16,
            color_rate: 16,
            memory_bytes_per_cycle: 64,
            hierarchical_z: true,
            early_z: true,
            z_compression: true,
            color_compression: true,
            z_cache: CacheConfig::Z_STENCIL,
            tex_l0: CacheConfig::TEXTURE_L0,
            tex_l1: CacheConfig::TEXTURE_L1,
            color_cache: CacheConfig::COLOR,
            cp_bytes_per_command: 32,
            fault_policy: FaultPolicy::Strict,
            // The R520 shipped with up to 512 MiB of GDDR3.
            vram_limit_bytes: 512 << 20,
            threads: 0,
            stripe_rows: 32,
            geometry_threads: 0,
            geometry_chunk: 64,
            frame_pipeline: false,
        }
    }

    /// The paper's benchmark resolution.
    pub fn paper() -> Self {
        Self::r520(1024, 768)
    }

    /// Table II rows as `(parameter, R520, ATTILA-model)` strings, for the
    /// `repro table2` output.
    pub fn table2_rows(&self) -> Vec<(String, String, String)> {
        vec![
            (
                "Vertex/Fragment Shaders".into(),
                "8/16".into(),
                format!("{} (unified)", self.shader_units),
            ),
            (
                "Triangle Setup".into(),
                "2 triangles/cycle".into(),
                format!("{} triangles/cycle", self.triangles_per_cycle),
            ),
            (
                "Texture Rate".into(),
                "16 bilinears/cycle".into(),
                format!("{} bilinears/cycle", self.bilinears_per_cycle),
            ),
            (
                "ZStencil / Color Rates".into(),
                "16 / 16 fragments/cycle".into(),
                format!("{} / {} fragments/cycle", self.z_rate, self.color_rate),
            ),
            (
                "Memory BW".into(),
                "> 64 bytes/cycle".into(),
                format!("{} bytes/cycle", self.memory_bytes_per_cycle),
            ),
        ]
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table2() {
        let c = GpuConfig::paper();
        assert_eq!((c.width, c.height), (1024, 768));
        assert_eq!(c.shader_units, 16);
        assert_eq!(c.triangles_per_cycle, 2);
        assert_eq!(c.bilinears_per_cycle, 16);
        assert_eq!((c.z_rate, c.color_rate), (16, 16));
        assert_eq!(c.memory_bytes_per_cycle, 64);
    }

    #[test]
    fn cache_geometry_matches_table14() {
        let c = GpuConfig::paper();
        assert_eq!(c.z_cache.capacity(), 16 * 1024);
        assert_eq!(c.tex_l0.capacity(), 4 * 1024);
        assert_eq!(c.tex_l1.capacity(), 16 * 1024);
        assert_eq!(c.color_cache.capacity(), 16 * 1024);
    }

    #[test]
    fn table2_rows_complete() {
        assert_eq!(GpuConfig::paper().table2_rows().len(), 5);
    }
}
