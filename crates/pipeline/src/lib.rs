//! The GPU pipeline simulator: an ATTILA-class behavioural model.
//!
//! [`Gpu`] consumes the [`gwc_api`] command stream and executes the full
//! rendering pipeline of a 2005-era GPU (the paper configures ATTILA to
//! match an ATI R520, Table II):
//!
//! ```text
//! Command Processor
//!   → Streamer (index fetch + post-transform vertex cache)
//!   → Vertex Shading
//!   → Primitive Assembly → Clipper → Face Culling → Triangle Setup
//!   → Recursive Tiled Rasterizer (16×16 → 8×8 → 2×2 quads)
//!   → Hierarchical Z
//!   → Early Z & Stencil (z cache, fast clear, z compression)
//!   → Fragment Shading + Texture Unit (L0/L1 caches, DXT, anisotropic)
//!   → Alpha test / Late Z & Stencil
//!   → Color Mask / Blend (color cache, fast clear, color compression)
//!   → DAC scan-out
//! ```
//!
//! Rendering is *functionally real*: vertices run through the shader
//! interpreter, fragments are shaded with texture fetches against real DXT
//! data, depth/stencil state machines execute per fragment, and the color
//! buffer holds the final image. Every statistic the paper reports at the
//! microarchitectural level (Tables VII–XI and XIII–XVII, Figures 5–7)
//! falls out of counters along this pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod budget;
mod checkpoint;
mod colorbuffer;
mod config;
mod error;
mod fragment;
mod geometry;
mod gpu;
mod stats;
mod streamer;
mod texunit;

pub use budget::{CancelCause, CancelToken};
pub use checkpoint::CheckpointError;
pub use colorbuffer::ColorBuffer;
pub use config::GpuConfig;
pub use error::{FaultKind, FaultPolicy, SimError};
pub use gpu::Gpu;
pub use stats::{FrameSimStats, SimStats};
pub use streamer::VertexCache;
pub use texunit::TextureUnit;
