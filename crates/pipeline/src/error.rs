//! Typed simulator faults and the replay degradation policy.
//!
//! A replayed trace is untrusted input: records can be corrupted on disk,
//! truncated in flight, or reference resources that were never created.
//! Every input-dependent failure in the pipeline is classified as a
//! [`SimError`] so a multi-thousand-frame characterization run can report
//! *what* went wrong — and, under a lenient [`FaultPolicy`], keep going
//! the way a real driver drops a bad batch instead of hanging the GPU.

use std::fmt;

/// Broad classification of a [`SimError`], used for per-kind fault
/// counters (see [`crate::SimStats::fault_counts`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A command referenced a resource id that was never created.
    UnboundResource,
    /// An index or coordinate fell outside its buffer.
    IndexOutOfRange,
    /// Vertex shading produced a non-finite clip position.
    NonFiniteVertex,
    /// A shader program or its constant state was invalid.
    ShaderFault,
    /// A resource allocation would exceed the configured VRAM budget.
    AllocationOverflow,
    /// The memory controller reported corrupted read data.
    MemoryFault,
    /// Durable storage failed while persisting a result (artifact,
    /// manifest, checkpoint): EIO, ENOSPC, short or torn write. Never
    /// raised by the simulation itself — the harness and daemon classify
    /// persistence failures here so degrade decisions ride the same
    /// taxonomy as simulation faults.
    Storage,
}

impl FaultKind {
    /// All kinds, in counter order.
    pub const ALL: [FaultKind; 7] = [
        FaultKind::UnboundResource,
        FaultKind::IndexOutOfRange,
        FaultKind::NonFiniteVertex,
        FaultKind::ShaderFault,
        FaultKind::AllocationOverflow,
        FaultKind::MemoryFault,
        FaultKind::Storage,
    ];

    /// Position of this kind in [`FaultKind::ALL`] (counter slot).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::UnboundResource => "unbound-resource",
            FaultKind::IndexOutOfRange => "index-out-of-range",
            FaultKind::NonFiniteVertex => "non-finite-vertex",
            FaultKind::ShaderFault => "shader-fault",
            FaultKind::AllocationOverflow => "allocation-overflow",
            FaultKind::MemoryFault => "memory-fault",
            FaultKind::Storage => "storage",
        }
    }
}

/// A classified, input-dependent simulator fault.
///
/// Internal invariant violations still panic; `SimError` covers exactly
/// the failures a corrupt or hostile command stream can provoke.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A command referenced a resource that does not exist.
    UnboundResource {
        /// Resource namespace ("vertex-buffer", "index-buffer", "texture",
        /// "program").
        kind: &'static str,
        /// The missing id.
        id: u32,
    },
    /// An index fell outside the addressed buffer.
    IndexOutOfRange {
        /// What was being indexed ("index", "vertex", "index-range").
        what: &'static str,
        /// The out-of-range value.
        index: u64,
        /// The exclusive bound it violated.
        limit: u64,
    },
    /// Vertex shading produced a non-finite clip-space position.
    NonFiniteVertex {
        /// The vertex buffer the vertex came from.
        buffer: u32,
        /// The vertex index within the buffer.
        index: u32,
    },
    /// A shader program or its constant state was invalid for the draw.
    ShaderFault {
        /// The offending program id.
        program: u32,
        /// Human-readable cause.
        reason: &'static str,
    },
    /// A resource allocation would exceed the VRAM budget
    /// ([`crate::GpuConfig::vram_limit_bytes`]).
    AllocationOverflow {
        /// Bytes the command asked for.
        requested: u64,
        /// Bytes already allocated.
        allocated: u64,
        /// The configured budget.
        limit: u64,
    },
    /// The memory controller reported corrupted data on a read.
    MemoryFault {
        /// Memory client that observed the corruption.
        client: &'static str,
        /// Number of corrupted reads observed while executing the command.
        count: u64,
    },
    /// Durable storage failed while persisting a result. The degrade
    /// policy: the write-ahead journal fail-stops on this, everything
    /// else (artifacts, reports) demotes the one affected result and
    /// carries on.
    Storage {
        /// What was being persisted ("artifact", "manifest", "checkpoint").
        what: &'static str,
        /// The underlying I/O error, as text (I/O errors don't clone).
        detail: String,
    },
}

impl SimError {
    /// The fault's classification bucket.
    pub fn kind(&self) -> FaultKind {
        match self {
            SimError::UnboundResource { .. } => FaultKind::UnboundResource,
            SimError::IndexOutOfRange { .. } => FaultKind::IndexOutOfRange,
            SimError::NonFiniteVertex { .. } => FaultKind::NonFiniteVertex,
            SimError::ShaderFault { .. } => FaultKind::ShaderFault,
            SimError::AllocationOverflow { .. } => FaultKind::AllocationOverflow,
            SimError::MemoryFault { .. } => FaultKind::MemoryFault,
            SimError::Storage { .. } => FaultKind::Storage,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnboundResource { kind, id } => {
                write!(f, "unbound {kind} {id}")
            }
            SimError::IndexOutOfRange { what, index, limit } => {
                write!(f, "{what} {index} out of range (limit {limit})")
            }
            SimError::NonFiniteVertex { buffer, index } => {
                write!(f, "non-finite clip position for vertex {index} of buffer {buffer}")
            }
            SimError::ShaderFault { program, reason } => {
                write!(f, "shader fault in program {program}: {reason}")
            }
            SimError::AllocationOverflow { requested, allocated, limit } => {
                write!(
                    f,
                    "allocation of {requested} B overflows VRAM budget ({allocated} of {limit} B used)"
                )
            }
            SimError::MemoryFault { client, count } => {
                write!(f, "{count} corrupted read(s) on memory client {client}")
            }
            SimError::Storage { what, detail } => {
                write!(f, "storage fault persisting {what}: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// How the GPU reacts when a command faults.
///
/// Mirrors real driver behaviour: a strict debug build surfaces the first
/// fault; a production driver drops the bad batch (or the whole frame)
/// and keeps the display alive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPolicy {
    /// Surface the first fault to the caller ([`crate::Gpu::try_consume`]
    /// returns `Err`); the faulty command is dropped.
    #[default]
    Strict,
    /// Drop the faulty command (one draw batch at most) and continue;
    /// counts into [`crate::FrameSimStats::dropped_batches`].
    SkipBatch,
    /// Drop the rest of the current frame (commands are ignored until the
    /// next `EndFrame`); counts into
    /// [`crate::FrameSimStats::dropped_frames`].
    SkipFrame,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        let e = SimError::UnboundResource { kind: "texture", id: 3 };
        assert_eq!(e.kind(), FaultKind::UnboundResource);
        assert_eq!(e.kind().name(), "unbound-resource");
        let e = SimError::IndexOutOfRange { what: "index", index: 9, limit: 4 };
        assert_eq!(e.kind(), FaultKind::IndexOutOfRange);
        let e = SimError::Storage { what: "artifact", detail: "No space left".into() };
        assert_eq!(e.kind(), FaultKind::Storage);
        assert!(e.to_string().contains("artifact") && e.to_string().contains("No space"));
        assert_eq!(FaultKind::ALL.len(), 7);
        for (i, k) in FaultKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i, "counter slots must match ALL order");
        }
    }

    #[test]
    fn display_is_informative() {
        let e = SimError::AllocationOverflow { requested: 100, allocated: 50, limit: 120 };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("120"));
        let e = SimError::NonFiniteVertex { buffer: 2, index: 7 };
        assert!(e.to_string().contains("vertex 7"));
    }

    #[test]
    fn default_policy_is_strict() {
        assert_eq!(FaultPolicy::default(), FaultPolicy::Strict);
    }
}
