//! The color buffer (RGBA8) with blend evaluation.

use gwc_math::Vec4;
use gwc_raster::{BlendFactor, BlendState};
use serde::{Deserialize, Serialize};

/// Packs a normalized color into RGBA8.
fn pack(c: Vec4) -> u32 {
    let q = |v: f32| (v.clamp(0.0, 1.0) * 255.0 + 0.5) as u32;
    q(c.x) | (q(c.y) << 8) | (q(c.z) << 16) | (q(c.w) << 24)
}

/// Unpacks RGBA8 to a normalized color.
fn unpack(p: u32) -> Vec4 {
    Vec4::new(
        (p & 0xff) as f32 / 255.0,
        ((p >> 8) & 0xff) as f32 / 255.0,
        ((p >> 16) & 0xff) as f32 / 255.0,
        ((p >> 24) & 0xff) as f32 / 255.0,
    )
}

fn factor(f: BlendFactor, src: Vec4, dst: Vec4) -> Vec4 {
    match f {
        BlendFactor::Zero => Vec4::ZERO,
        BlendFactor::One => Vec4::ONE,
        BlendFactor::SrcAlpha => Vec4::splat(src.w),
        BlendFactor::OneMinusSrcAlpha => Vec4::splat(1.0 - src.w),
        BlendFactor::DstColor => dst,
        BlendFactor::SrcColor => src,
    }
}

/// The render target: a `width × height` RGBA8 surface.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColorBuffer {
    width: u32,
    height: u32,
    pixels: Vec<u32>,
}

impl ColorBuffer {
    /// Creates a buffer cleared to opaque black.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "color buffer must be non-empty");
        ColorBuffer { width, height, pixels: vec![0xff00_0000; (width * height) as usize] }
    }

    /// Buffer width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Buffer height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Clears to a color.
    pub fn clear(&mut self, color: Vec4) {
        self.pixels.fill(pack(color));
    }

    #[inline]
    fn index(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height);
        (y * self.width + x) as usize
    }

    /// Pixel color at `(x, y)`.
    #[inline]
    pub fn pixel(&self, x: u32, y: u32) -> Vec4 {
        unpack(self.pixels[self.index(x, y)])
    }

    /// Raw packed pixel.
    #[inline]
    pub fn raw_pixel(&self, x: u32, y: u32) -> u32 {
        self.pixels[self.index(x, y)]
    }

    /// The raw packed surface, row-major (checkpoint support).
    pub fn raw_pixels(&self) -> &[u32] {
        &self.pixels
    }

    /// Rebuilds a buffer from its raw surface (checkpoint restore).
    ///
    /// # Panics
    ///
    /// Panics if `pixels` does not cover `width × height`.
    pub fn restore(width: u32, height: u32, pixels: Vec<u32>) -> Self {
        assert_eq!(pixels.len(), (width * height) as usize, "surface size mismatch");
        ColorBuffer { width, height, pixels }
    }

    /// Writes a fragment color with blending.
    pub fn write(&mut self, x: u32, y: u32, src: Vec4, blend: &BlendState) {
        let i = self.index(x, y);
        let out = if blend.enabled {
            let dst = unpack(self.pixels[i]);
            let s = factor(blend.src, src, dst);
            let d = factor(blend.dst, src, dst);
            (src * s + dst * d).saturate()
        } else {
            src.saturate()
        };
        self.pixels[i] = pack(out);
    }

    /// The packed colors of the 8×8 block containing `(x, y)` (row-major,
    /// padded with 0 at surface edges) — feeds the color compressor.
    pub fn block_colors(&self, x: u32, y: u32) -> [u32; 64] {
        let bx = (x / 8) * 8;
        let by = (y / 8) * 8;
        let mut out = [0u32; 64];
        for iy in 0..8 {
            for ix in 0..8 {
                let xx = bx + ix;
                let yy = by + iy;
                if xx < self.width && yy < self.height {
                    out[(iy * 8 + ix) as usize] = self.pixels[self.index(xx, yy)];
                }
            }
        }
        out
    }

    /// Splits the surface into disjoint horizontal bands of `band_rows`
    /// rows (the last band may be shorter). Each [`ColorBandView`] writes
    /// only its own rows, so the views can be driven from different
    /// threads while partitioning exactly the operations the whole surface
    /// would see.
    ///
    /// # Panics
    ///
    /// Panics if `band_rows` is zero or not a multiple of 8 (blend blocks
    /// are 8×8).
    pub(crate) fn band_views(&mut self, band_rows: u32) -> Vec<ColorBandView<'_>> {
        assert!(
            band_rows > 0 && band_rows.is_multiple_of(8),
            "band_rows must be a non-zero multiple of 8"
        );
        let width = self.width;
        self.pixels
            .chunks_mut((band_rows * width) as usize)
            .enumerate()
            .map(|(i, pixels)| ColorBandView { width, y0: i as u32 * band_rows, pixels })
            .collect()
    }

    /// Serializes the frame as a binary PPM (P6) image — the simulator's
    /// screenshot facility.
    ///
    /// ```no_run
    /// # let cb = gwc_pipeline::ColorBuffer::new(4, 4);
    /// std::fs::write("frame.ppm", cb.to_ppm())?;
    /// # Ok::<(), std::io::Error>(())
    /// ```
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.reserve(self.pixels.len() * 3);
        for &p in &self.pixels {
            out.push((p & 0xff) as u8);
            out.push(((p >> 8) & 0xff) as u8);
            out.push(((p >> 16) & 0xff) as u8);
        }
        out
    }

    /// Mean luminance of the frame in `[0, 1]` (a cheap smoke-test that
    /// rendering produced something).
    pub fn mean_luminance(&self) -> f64 {
        let mut acc = 0f64;
        for &p in &self.pixels {
            let c = unpack(p);
            acc += (0.299 * c.x + 0.587 * c.y + 0.114 * c.z) as f64;
        }
        acc / self.pixels.len() as f64
    }
}

/// A mutable view of one horizontal band of a [`ColorBuffer`], addressed
/// in global surface coordinates. Produced by [`ColorBuffer::band_views`];
/// the stripe-parallel fragment pipeline gives each worker exactly one.
#[derive(Debug)]
pub(crate) struct ColorBandView<'a> {
    width: u32,
    y0: u32,
    pixels: &'a mut [u32],
}

impl ColorBandView<'_> {
    /// Rows covered by this band.
    pub fn rows(&self) -> u32 {
        self.pixels.len() as u32 / self.width
    }

    #[inline]
    fn index(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width, "x {x} outside surface");
        debug_assert!(
            y >= self.y0 && y < self.y0 + self.rows(),
            "row {y} outside band [{}, {})",
            self.y0,
            self.y0 + self.rows()
        );
        ((y - self.y0) * self.width + x) as usize
    }

    /// Writes a fragment color with blending (global coordinates); the
    /// same arithmetic as [`ColorBuffer::write`].
    pub fn write(&mut self, x: u32, y: u32, src: Vec4, blend: &BlendState) {
        let i = self.index(x, y);
        let out = if blend.enabled {
            let dst = unpack(self.pixels[i]);
            let s = factor(blend.src, src, dst);
            let d = factor(blend.dst, src, dst);
            (src * s + dst * d).saturate()
        } else {
            src.saturate()
        };
        self.pixels[i] = pack(out);
    }

    /// The packed colors of the 8×8 block containing `(x, y)` (row-major,
    /// 0-padded past the surface edge) — matches
    /// [`ColorBuffer::block_colors`] for blocks owned by this band.
    pub fn block_colors(&self, x: u32, y: u32) -> [u32; 64] {
        let bx = (x / 8) * 8;
        let by = (y / 8) * 8;
        debug_assert!(by >= self.y0, "block row {by} outside band");
        let mut out = [0u32; 64];
        for iy in 0..8 {
            for ix in 0..8 {
                let xx = bx + ix;
                let yy = by + iy;
                if xx < self.width && yy < self.y0 + self.rows() {
                    out[(iy * 8 + ix) as usize] = self.pixels[self.index(xx, yy)];
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let c = Vec4::new(0.25, 0.5, 0.75, 1.0);
        let r = unpack(pack(c));
        assert!((r.x - 0.25).abs() < 0.01);
        assert!((r.y - 0.5).abs() < 0.01);
        assert!((r.w - 1.0).abs() < 0.01);
    }

    #[test]
    fn write_replace() {
        let mut cb = ColorBuffer::new(4, 4);
        cb.write(1, 2, Vec4::new(1.0, 0.0, 0.0, 1.0), &BlendState::default());
        let p = cb.pixel(1, 2);
        assert!(p.x > 0.99 && p.y < 0.01);
    }

    #[test]
    fn additive_blend() {
        let mut cb = ColorBuffer::new(2, 2);
        cb.clear(Vec4::new(0.25, 0.25, 0.25, 1.0));
        let add = BlendState { enabled: true, src: BlendFactor::One, dst: BlendFactor::One };
        cb.write(0, 0, Vec4::new(0.25, 0.5, 0.0, 1.0), &add);
        let p = cb.pixel(0, 0);
        assert!((p.x - 0.5).abs() < 0.01);
        assert!((p.y - 0.75).abs() < 0.01);
    }

    #[test]
    fn alpha_blend() {
        let mut cb = ColorBuffer::new(2, 2);
        cb.clear(Vec4::new(0.0, 0.0, 1.0, 1.0));
        let alpha = BlendState {
            enabled: true,
            src: BlendFactor::SrcAlpha,
            dst: BlendFactor::OneMinusSrcAlpha,
        };
        // 50% red over blue.
        cb.write(0, 0, Vec4::new(1.0, 0.0, 0.0, 0.5), &alpha);
        let p = cb.pixel(0, 0);
        assert!((p.x - 0.5).abs() < 0.01, "{p:?}");
        assert!((p.z - 0.5).abs() < 0.01, "{p:?}");
    }

    #[test]
    fn blend_saturates() {
        let mut cb = ColorBuffer::new(2, 2);
        cb.clear(Vec4::ONE);
        let add = BlendState { enabled: true, src: BlendFactor::One, dst: BlendFactor::One };
        cb.write(0, 0, Vec4::ONE, &add);
        assert_eq!(cb.pixel(0, 0).x, 1.0);
    }

    #[test]
    fn block_colors_uniform_after_clear() {
        let mut cb = ColorBuffer::new(16, 16);
        cb.clear(Vec4::new(0.5, 0.5, 0.5, 1.0));
        let blk = cb.block_colors(3, 3);
        assert!(blk.iter().all(|&c| c == blk[0]));
    }

    #[test]
    fn ppm_header_and_payload() {
        let mut cb = ColorBuffer::new(3, 2);
        cb.write(0, 0, Vec4::new(1.0, 0.0, 0.0, 1.0), &BlendState::default());
        let ppm = cb.to_ppm();
        assert!(ppm.starts_with(b"P6\n3 2\n255\n"));
        let header = b"P6\n3 2\n255\n".len();
        assert_eq!(ppm.len(), header + 3 * 2 * 3);
        // First pixel is red.
        assert_eq!(ppm[header], 255);
        assert_eq!(ppm[header + 1], 0);
    }

    #[test]
    fn band_views_match_whole_surface() {
        let blend = BlendState { enabled: true, src: BlendFactor::One, dst: BlendFactor::One };
        let mut whole = ColorBuffer::new(16, 24);
        let mut banded = ColorBuffer::new(16, 24);
        let writes =
            [(0u32, 0u32), (5, 7), (8, 8), (15, 15), (3, 16), (15, 23), (0, 23), (7, 12)];
        for &(x, y) in &writes {
            whole.write(x, y, Vec4::new(0.3, 0.1, 0.6, 0.5), &blend);
        }
        {
            let mut views = banded.band_views(8);
            assert_eq!(views.len(), 3);
            for &(x, y) in &writes {
                let v = &mut views[(y / 8) as usize];
                v.write(x, y, Vec4::new(0.3, 0.1, 0.6, 0.5), &blend);
            }
            assert_eq!(views[1].block_colors(8, 8), whole.block_colors(8, 8));
            assert_eq!(views[2].rows(), 8);
        }
        assert_eq!(banded.raw_pixels(), whole.raw_pixels());
    }

    #[test]
    fn band_views_short_last_band() {
        let mut cb = ColorBuffer::new(8, 20);
        let views = cb.band_views(16);
        assert_eq!(views.len(), 2);
        assert_eq!(views[1].rows(), 4);
        // Block colors at the surface edge pad with zeros like the whole
        // surface does.
        let whole = ColorBuffer::new(8, 20);
        let mut cb2 = ColorBuffer::new(8, 20);
        let views2 = cb2.band_views(16);
        assert_eq!(views2[1].block_colors(0, 16), whole.block_colors(0, 16));
    }

    #[test]
    fn mean_luminance_tracks_content() {
        let mut cb = ColorBuffer::new(8, 8);
        cb.clear(Vec4::ZERO);
        let dark = cb.mean_luminance();
        cb.clear(Vec4::ONE);
        let bright = cb.mean_luminance();
        assert!(dark < 0.05 && bright > 0.95);
    }
}
