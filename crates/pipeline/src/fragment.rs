//! The stripe-parallel fragment pipeline.
//!
//! The framebuffer is partitioned into horizontal *stripes* of
//! [`crate::GpuConfig::stripe_rows`] rows. Geometry (vertex fetch,
//! shading, clipping, triangle setup) stays serial on the GPU front end;
//! each draw's fragment work — rasterization, Hierarchical Z, Z/stencil,
//! fragment shading, texturing, and blending — is then flushed through
//! one [`StripeJob`] per stripe. Stripes own disjoint bands of every
//! framebuffer surface plus private cache/memory models, so jobs can run
//! on worker threads with no shared mutable state.
//!
//! Determinism is by construction, not by locking:
//!
//! - Stripe layout derives from the configuration only — the thread count
//!   decides *who* runs a stripe, never *what* a stripe does.
//! - Rasterization is clamped per band ([`gwc_raster::rasterize_band`]);
//!   a band sees exactly the quads of the full traversal that fall inside
//!   it, in the same order.
//! - All statistics are `u64` sums, so reducing stripe shards is
//!   associative and order-insensitive; memory traffic is drained in
//!   stripe order regardless of completion order.
//! - Fault-injection coins are per-stripe (seeded from the stripe index),
//!   and a faulting stripe stops only its own queue; the lowest faulting
//!   stripe index is reported.

use std::collections::HashMap;

use gwc_math::Vec4;
use gwc_mem::compress::{classify_color_block, classify_z_block, BlockState, DirBandView};
use gwc_mem::{tiled_offset, AccessKind, Cache, FrameTraffic, MemClient, MemoryController};
use gwc_raster::{rasterize_band, BlendState, DepthState, HzBandView, Quad, RasterStats,
                 StencilState, TriangleSetup, Viewport, ZBandView, ZResult, MAX_VARYINGS};
use gwc_shader::{ExecStats, Program, ShaderMachine};
use gwc_telemetry::{SpanEvent, SpanRing, Stage};
use gwc_texture::{SamplerState, Texture};

use crate::budget::CancelToken;
use crate::colorbuffer::ColorBandView;
use crate::config::GpuConfig;
use crate::error::SimError;
use crate::stats::FrameSimStats;
use crate::texunit::{BoundSampler, TextureUnit};

/// The persistent per-stripe execution units: the caches and the memory
/// controller that model the stripe's slice of the ROP/texture hardware.
/// These live for the whole run (cache contents carry across draws and
/// frames, exactly like the former global units did).
#[derive(Debug)]
pub(crate) struct StripeUnits {
    /// Z & stencil cache for this stripe's blocks.
    pub z_cache: Cache,
    /// Color cache for this stripe's blocks.
    pub color_cache: Cache,
    /// Texture unit (L0/L1 caches + filtering statistics).
    pub texunit: TextureUnit,
    /// Stripe-local memory controller; its per-draw traffic is drained
    /// into the master controller in stripe order.
    pub mem: MemoryController,
}

impl StripeUnits {
    /// Creates the units with the configured cache geometry.
    pub fn new(config: &GpuConfig) -> Self {
        StripeUnits {
            z_cache: Cache::new(config.z_cache),
            color_cache: Cache::new(config.color_cache),
            texunit: TextureUnit::new(config),
            mem: MemoryController::new(),
        }
    }
}

/// Everything a stripe needs to read about the current draw: the
/// post-setup triangles and an immutable snapshot of the bound state.
pub(crate) struct DrawPacket<'a> {
    /// Surviving triangles, with the stencil face state each selected.
    pub tris: Vec<(TriangleSetup, StencilState)>,
    /// The bound fragment program.
    pub program: &'a Program,
    /// Early Z legality for this draw.
    pub early_z_ok: bool,
    /// Hierarchical Z legality for this draw.
    pub hz_ok: bool,
    /// Depth state snapshot.
    pub depth_state: DepthState,
    /// Blend state snapshot.
    pub blend: BlendState,
    /// Color write mask snapshot.
    pub color_mask: bool,
    /// Alpha test reference, when enabled.
    pub alpha_test: Option<f32>,
    /// Render target width.
    pub width: u32,
    /// Render target height.
    pub height: u32,
    /// Z block compression enabled.
    pub z_compression: bool,
    /// Color block compression enabled.
    pub color_compression: bool,
    /// Depth/stencil surface base address.
    pub zb_addr: u64,
    /// Color surface base address.
    pub cb_addr: u64,
    /// Texture unit bindings.
    pub bindings: &'a HashMap<u8, u32>,
    /// Texture pool.
    pub pool: &'a HashMap<u32, (Texture, SamplerState)>,
    /// The viewport.
    pub viewport: Viewport,
    /// Supervised runs: the run's cancellation token. Stripes charge one
    /// work tick per rasterized quad and stop between triangles once the
    /// token trips (the partial results are discarded by the supervisor,
    /// so an early stop cannot corrupt any surviving statistic).
    pub cancel: Option<&'a CancelToken>,
}

/// One stripe's mutable execution state for one draw: band views over the
/// framebuffer surfaces, the stripe's persistent units, a private shader
/// machine clone, and a statistics shard.
pub(crate) struct StripeJob<'a> {
    /// Stripe index (row band `index * stripe_rows ..`).
    pub index: usize,
    /// First row of the stripe.
    pub y0: u32,
    /// One past the last row of the stripe.
    pub y1: u32,
    /// Depth/stencil band.
    pub z: ZBandView<'a>,
    /// Hierarchical-Z band.
    pub hz: HzBandView<'a>,
    /// Color band.
    pub color: ColorBandView<'a>,
    /// Z compression-directory band.
    pub z_dir: DirBandView<'a>,
    /// Color compression-directory band.
    pub color_dir: DirBandView<'a>,
    /// The stripe's persistent caches + memory controller.
    pub units: &'a mut StripeUnits,
    /// Private fragment shader machine (constants cloned from the master,
    /// statistics zeroed; the delta merges back after the draw).
    pub fs: ShaderMachine,
    /// Private statistics shard.
    pub shard: FrameSimStats,
    /// First classified fault in this stripe; stops the stripe's queue.
    pub fault: Option<SimError>,
    /// Telemetry arm (spans level only): this stripe's detached span ring
    /// plus the draw's base work tick.
    pub trace: Option<StripeTrace>,
}

/// A stripe's telemetry state for one draw: the ring it records into and
/// the global work tick the draw's fragment phase started at. Every stage
/// span this stripe emits starts at `base`; durations are the stage's own
/// fragment/quad counts, each bounded by the draw's total fragment count
/// (which is exactly how far the global clock advances for the draw), so
/// per-track timestamps never run backwards.
pub(crate) struct StripeTrace {
    /// Global work tick at the start of the draw's fragment phase.
    pub base: u64,
    /// The stripe's span ring, detached from the collector for the draw.
    pub ring: SpanRing,
    /// Tiles visited by traversal in this stripe (accumulated per draw).
    pub tiles: u64,
}

/// What a stripe hands back after its draw flush: everything the master
/// needs to reduce, in plain owned data (the band-view borrows end here).
pub(crate) struct StripeOutcome {
    /// Stripe index; outcomes are reduced in ascending index order.
    pub index: usize,
    /// Statistics shard.
    pub shard: FrameSimStats,
    /// Hierarchical-Z quads tested in this stripe.
    pub hz_tested: u64,
    /// Hierarchical-Z quads rejected in this stripe.
    pub hz_rejected: u64,
    /// Fragment-shader execution delta.
    pub fs_delta: ExecStats,
    /// First classified fault, if the stripe faulted.
    pub fault: Option<SimError>,
    /// The stripe's memory traffic for this draw.
    pub traffic: FrameTraffic,
    /// Injected-corruption record from the stripe's fault injector.
    pub injected: Option<(&'static str, u64)>,
    /// The stripe's span ring, carrying this draw's recorded stage spans
    /// back to the collector (spans level only).
    pub trace: Option<SpanRing>,
}

impl StripeJob<'_> {
    /// Runs every triangle of the packet over this stripe's band.
    pub fn run(&mut self, packet: &DrawPacket<'_>) {
        for (setup, stencil) in &packet.tris {
            if self.fault.is_some() {
                return;
            }
            if packet.cancel.is_some_and(|t| t.is_cancelled()) {
                return;
            }
            let mut raster_stats = RasterStats::default();
            let mut quads: Vec<Quad> = Vec::new();
            rasterize_band(setup, &packet.viewport, self.y0, self.y1, &mut raster_stats, &mut |q| {
                quads.push(*q)
            });
            self.shard.frags_raster += raster_stats.fragments;
            self.shard.quads_raster += raster_stats.quads;
            self.shard.quads_complete_raster += raster_stats.complete_quads;
            if let Some(trace) = &mut self.trace {
                trace.tiles += raster_stats.tiles_visited();
            }
            if let Some(tok) = packet.cancel {
                // Fragment-level budget granularity: a single huge
                // triangle still charges its quads before the next check.
                tok.charge(raster_stats.quads);
            }
            for quad in &quads {
                if let Err(e) = self.process_quad(quad, setup, stencil, packet) {
                    self.fault = Some(e);
                    return;
                }
            }
        }
    }

    /// Closes the job: records the draw's per-stage telemetry spans, reads
    /// back the band-view counters, and drains the stripe units, releasing
    /// all surface borrows.
    pub fn finish(mut self) -> StripeOutcome {
        let trace = self.trace.take().map(|mut trace| {
            self.record_spans(&mut trace);
            trace.ring
        });
        StripeOutcome {
            index: self.index,
            shard: self.shard,
            hz_tested: self.hz.tested(),
            hz_rejected: self.hz.rejected(),
            fs_delta: *self.fs.stats(),
            fault: self.fault,
            traffic: self.units.mem.take_current(),
            injected: self.units.mem.take_injected_faults(),
            trace,
        }
    }

    /// Emits this stripe's stage spans for the finished draw. The shard,
    /// band views, and shader machine are all fresh per draw, so their
    /// end-of-job counters *are* the per-draw deltas. Stages that did no
    /// work emit nothing, keeping rings quiet on stripes a draw missed.
    fn record_spans(&self, trace: &mut StripeTrace) {
        let (hz_tested, hz_rejected) = self.hz.counts();
        let fs = self.fs.stats();
        let spans = [
            (Stage::Raster, self.shard.frags_raster, self.shard.quads_raster, trace.tiles),
            (Stage::HiZ, hz_tested, hz_rejected, 0),
            (Stage::ZStencil, self.shard.frags_zst, self.shard.quads_zst_removed, self.z.writes()),
            (Stage::Shade, self.shard.frags_shaded, fs.instructions, fs.texture_instructions),
            (Stage::Blend, self.shard.frags_blended, self.shard.quads_blended, 0),
        ];
        for (stage, dur, arg0, arg1) in spans {
            if dur > 0 {
                trace.ring.push(SpanEvent { stage, start: trace.base, dur, arg0, arg1 });
            }
        }
    }

    /// One quad through HZ → early Z → shading → alpha → late Z → blend,
    /// against this stripe's band state only.
    fn process_quad(
        &mut self,
        quad: &Quad,
        setup: &TriangleSetup,
        stencil: &StencilState,
        packet: &DrawPacket<'_>,
    ) -> Result<(), SimError> {
        // --- Hierarchical Z ---
        if packet.hz_ok {
            let mut min_z = f32::INFINITY;
            for lane in 0..4 {
                if quad.coverage[lane] {
                    min_z = min_z.min(quad.depth[lane]);
                }
            }
            if !self.hz.test_quad(quad.x, quad.y, min_z, packet.depth_state.func, &self.z) {
                self.shard.quads_hz_removed += 1;
                return Ok(());
            }
        }

        let mut live = quad.coverage;

        // --- Early Z & stencil ---
        if packet.early_z_ok {
            if !self.run_zstencil(quad, &mut live, stencil, packet) {
                return Ok(());
            }
            // Color writes masked off and all tests already done: the quad
            // is dropped *before* shading (stencil-volume quads reach this
            // point in the Doom3-engine games — Table XI's shaded overdraw
            // excludes them while Table IX counts them as "Color Mask").
            if !packet.color_mask {
                self.shard.quads_colormask += 1;
                return Ok(());
            }
        }

        // --- Fragment shading ---
        let lane_inputs: [[Vec4; MAX_VARYINGS]; 4] = std::array::from_fn(|lane| {
            let (x, y) = quad.lane_pos(lane);
            let (x, y) = (x.min(packet.width - 1), y.min(packet.height - 1));
            setup.varyings_at(x, y)
        });
        let input_refs: [&[Vec4]; 4] = [
            &lane_inputs[0],
            &lane_inputs[1],
            &lane_inputs[2],
            &lane_inputs[3],
        ];
        let result = {
            let mut sampler = BoundSampler {
                bindings: packet.bindings,
                pool: packet.pool,
                unit: &mut self.units.texunit,
                mem: &mut self.units.mem,
                fault: None,
            };
            let r = self.fs.run_fragment_quad(packet.program, &input_refs, live, &mut sampler);
            if let Some(fault) = sampler.fault.take() {
                return Err(fault);
            }
            r
        };
        let shaded = live.iter().filter(|&&l| l).count() as u64;
        self.shard.frags_shaded += shaded;

        // --- Kill / alpha test ---
        let mut any_removed_by_alpha = false;
        #[allow(clippy::needless_range_loop)] // lanes step lockstep arrays
        for lane in 0..4 {
            if !live[lane] {
                continue;
            }
            if result.killed[lane] {
                live[lane] = false;
                any_removed_by_alpha = true;
                continue;
            }
            if let Some(reference) = packet.alpha_test {
                if result.color[lane].w < reference {
                    live[lane] = false;
                    any_removed_by_alpha = true;
                }
            }
        }
        if live.iter().all(|&l| !l) {
            if any_removed_by_alpha {
                self.shard.quads_alpha_removed += 1;
            }
            return Ok(());
        }

        // --- Late Z & stencil ---
        if !packet.early_z_ok {
            // Apply shader-written depth if present.
            let mut q = *quad;
            if let Some(depths) = result.depth {
                q.depth = depths;
            }
            if !self.run_zstencil(&q, &mut live, stencil, packet) {
                return Ok(());
            }
        }

        // --- Color mask ---
        if !packet.color_mask {
            self.shard.quads_colormask += 1;
            return Ok(());
        }

        // --- Blend & color write ---
        // Write-allocate: the fill covers the blend's destination read too.
        self.color_cache_access(quad.x, quad.y, true, packet);
        let mut written = 0u64;
        #[allow(clippy::needless_range_loop)] // lanes step lockstep arrays
        for lane in 0..4 {
            if !live[lane] {
                continue;
            }
            let (x, y) = quad.lane_pos(lane);
            if x >= packet.width || y >= packet.height {
                continue;
            }
            self.color.write(x, y, result.color[lane], &packet.blend);
            written += 1;
        }
        self.shard.frags_blended += written;
        self.shard.quads_blended += 1;
        Ok(())
    }

    /// Z & stencil for one quad against this stripe's band; returns
    /// `false` when the whole quad is removed.
    fn run_zstencil(
        &mut self,
        quad: &Quad,
        live: &mut [bool; 4],
        stencil: &StencilState,
        packet: &DrawPacket<'_>,
    ) -> bool {
        let tested = live.iter().filter(|&&l| l).count() as u64;
        if tested == 0 {
            return false;
        }
        self.shard.frags_zst += tested;
        let ds = packet.depth_state;
        let writes = (ds.test && ds.write) || stencil.test;
        self.z_cache_access(quad.x, quad.y, writes, packet);
        let mut any_pass = false;
        #[allow(clippy::needless_range_loop)] // lanes step lockstep arrays
        for lane in 0..4 {
            if !live[lane] {
                continue;
            }
            let (x, y) = quad.lane_pos(lane);
            if x >= packet.width || y >= packet.height {
                live[lane] = false;
                continue;
            }
            match self.z.test_and_update(x, y, quad.depth[lane], &ds, stencil) {
                ZResult::Pass => {
                    if ds.test && ds.write {
                        self.hz.note_depth_write(x, y);
                    }
                    any_pass = true;
                }
                ZResult::DepthFail | ZResult::StencilFail => {
                    live[lane] = false;
                }
            }
        }
        if !any_pass {
            self.shard.quads_zst_removed += 1;
            return false;
        }
        self.shard.quads_zst_survived += 1;
        if live.iter().all(|&l| l) {
            self.shard.quads_zst_complete += 1;
        }
        true
    }

    /// Z & stencil cache access for one quad: accounts fills and
    /// compressed writebacks against the stripe's cache and memory.
    fn z_cache_access(&mut self, x: u32, y: u32, write: bool, packet: &DrawPacket<'_>) {
        let addr = packet.zb_addr + tiled_offset(x, y, packet.width, 4);
        let kind = if write { AccessKind::Write } else { AccessKind::Read };
        let out = self.units.z_cache.access_detailed(addr, kind);
        if !out.hit {
            let state = if packet.z_compression {
                self.z_dir.state_at(x, y)
            } else {
                BlockState::Uncompressed
            };
            let bytes = state.transfer_bytes(256);
            if bytes > 0 {
                self.units.mem.read(MemClient::ZStencil, bytes);
            }
        }
        if let Some(line) = out.evicted_dirty_line {
            self.write_back_z_line(line, packet);
        }
    }

    fn color_cache_access(&mut self, x: u32, y: u32, write: bool, packet: &DrawPacket<'_>) {
        let addr = packet.cb_addr + tiled_offset(x, y, packet.width, 4);
        let kind = if write { AccessKind::Write } else { AccessKind::Read };
        let out = self.units.color_cache.access_detailed(addr, kind);
        if !out.hit {
            let state = if packet.color_compression {
                self.color_dir.state_at(x, y)
            } else {
                BlockState::Uncompressed
            };
            let bytes = state.transfer_bytes(256);
            if bytes > 0 {
                self.units.mem.read(MemClient::Color, bytes);
            }
        }
        if let Some(line) = out.evicted_dirty_line {
            self.write_back_color_line(line, packet);
        }
    }

    /// Writes back an evicted dirty Z line: reclassifies the 8×8 block
    /// from this stripe's band and sizes the compressed transfer.
    fn write_back_z_line(&mut self, line: u64, packet: &DrawPacket<'_>) {
        let (x, y) = block_pixel(line, packet.zb_addr, packet.width);
        let state = if packet.z_compression {
            classify_z_block(&self.z.block_depths(x, y))
        } else {
            BlockState::Uncompressed
        };
        self.z_dir.set_state_at(x, y, state);
        self.units.mem.write(MemClient::ZStencil, state.transfer_bytes(256).max(64));
    }

    fn write_back_color_line(&mut self, line: u64, packet: &DrawPacket<'_>) {
        let (x, y) = block_pixel(line, packet.cb_addr, packet.width);
        let state = if packet.color_compression {
            classify_color_block(&self.color.block_colors(x, y))
        } else {
            BlockState::Uncompressed
        };
        self.color_dir.set_state_at(x, y, state);
        self.units.mem.write(MemClient::Color, state.transfer_bytes(256).max(64));
    }
}

/// Maps a framebuffer line address back to the pixel of its 8×8 block.
/// Stripe caches only ever hold lines of their own band, so the result
/// always lands inside the calling stripe.
pub(crate) fn block_pixel(line_addr: u64, base: u64, width: u32) -> (u32, u32) {
    let block = (line_addr - base) / 256;
    let blocks_x = width.div_ceil(8) as u64;
    let bx = (block % blocks_x) as u32;
    let by = (block / blocks_x) as u32;
    (bx * 8, by * 8)
}
