//! The chunked, batch-ordered parallel geometry front end.
//!
//! Replaces the serial per-triangle fetch→shade→clip→cull→setup loop with
//! three phases whose parallelism is invisible in every result:
//!
//! 1. **Plan** (serial, cheap): walk the index stream in triangle order,
//!    simulating the post-transform cache on index *tags* alone — the same
//!    FIFO the [`crate::VertexCache`] models, minus the payloads. Produces
//!    the miss list (vertices that must be shaded, in first-use order) and,
//!    per triangle, the three miss-list slots it assembles from.
//! 2. **Shade** (parallel): the miss list is cut into fixed-size chunks;
//!    each chunk clones the vertex-shader prototype (master constants,
//!    zeroed statistics) and writes shaded vertices into its disjoint
//!    output slice.
//! 3. **Assemble** (parallel): triangles are cut into fixed-size chunks;
//!    each chunk clips, culls and sets up its triangles, collecting
//!    survivors and a [`GeomShard`] of counters.
//!
//! Chunk boundaries depend only on the configured chunk size and the
//! command stream — never on the worker count — and every merged quantity
//! is an exact integer sum reduced in ascending chunk order, so any worker
//! count is bit-identical to the serial loop this replaces (the same
//! contract the fragment stripes honor). Faults are resolved to the
//! *earliest* fetch or triangle in serial order, and the returned counters
//! are recomputed for exactly the prefix the serial loop would have
//! executed before stopping.

use gwc_api::Indices;
use gwc_math::Vec4;
use gwc_raster::{clip_near, ClipResult, CullMode, FrontFace, PrimitiveType, ShadedVertex,
                 StencilState, TriangleSetup, Viewport, MAX_VARYINGS};
use gwc_shader::{ExecStats, Program, ShaderMachine};
use gwc_stats::GeomShard;

use crate::budget::CancelToken;
use crate::error::SimError;

/// Fixed-function state sampled at draw time for clip, cull and setup.
#[derive(Clone, Copy)]
pub(crate) struct SetupState {
    pub viewport: Viewport,
    pub cull: CullMode,
    pub front_face: FrontFace,
    pub stencil_front: StencilState,
    pub stencil_back: StencilState,
}

/// Everything one draw's geometry needs, borrowed from the GPU.
pub(crate) struct GeomRequest<'a> {
    /// Vertex buffer contents.
    pub data: &'a [Vec4],
    /// Attributes per vertex (`layout.attributes.max(1)`).
    pub attrs: usize,
    /// Bytes fetched from memory per shaded vertex.
    pub stride_bytes: u64,
    /// Vertex buffer id, for fault reporting.
    pub vertex_buffer: u32,
    /// Index buffer contents.
    pub indices: &'a Indices,
    /// First index of the draw range.
    pub first: usize,
    /// Primitive topology.
    pub primitive: PrimitiveType,
    /// Triangles in the draw (`primitive.triangle_count(count)`).
    pub tri_count: usize,
    /// The bound vertex program.
    pub program: &'a Program,
    /// Vertex-shader prototype: master constants, zeroed statistics.
    pub vs_proto: ShaderMachine,
    /// Post-transform cache capacity in entries.
    pub cache_entries: usize,
    /// Vertices/triangles per chunk (`GpuConfig::geometry_chunk`, ≥ 1).
    pub chunk: usize,
    /// Geometry worker count. Any value is bit-identical.
    pub workers: usize,
    /// Clip/cull/setup state snapshot.
    pub setup: SetupState,
    /// Optional cooperative cancellation token.
    pub cancel: Option<&'a CancelToken>,
}

/// One draw's geometry result, ready for the GPU to commit.
pub(crate) struct GeomOutput {
    /// Post-clip survivors in exact serial emission order, ready for the
    /// fragment flush.
    pub tris: Vec<(TriangleSetup, StencilState)>,
    /// Exact geometry counters for the executed prefix of the draw.
    pub shard: GeomShard,
    /// Vertex-shader statistics delta, to merge into the master machine.
    pub vs_delta: ExecStats,
    /// Work ticks the serial loop would have advanced (one per triangle
    /// reached, including a faulting one).
    pub ticks: u64,
    /// The earliest serial-order fault, if any. `tris` is empty when set —
    /// a faulted draw never reaches fragment work.
    pub error: Option<SimError>,
    /// The cancellation token tripped mid-run; nothing should be
    /// committed (the supervisor discards the run).
    pub cancelled: bool,
}

impl GeomOutput {
    fn tripped() -> GeomOutput {
        GeomOutput {
            tris: Vec::new(),
            shard: GeomShard::default(),
            vs_delta: ExecStats::default(),
            ticks: 0,
            error: None,
            cancelled: true,
        }
    }
}

// ---- phase 1: serial plan ---------------------------------------------

/// The serial walk's output: which vertices to shade and how triangles
/// reference them.
struct Plan {
    /// Vertex index per post-transform cache miss, in first-use order.
    fetches: Vec<u32>,
    /// Per fully-planned triangle, the miss-list slot of each corner.
    tri_slots: Vec<[u32; 3]>,
    /// Slots of the triangle in progress when planning stopped at an
    /// out-of-range index (empty otherwise).
    partial: Vec<u32>,
    /// Index-stream lookups, including the failing slot of a stopped plan.
    lookups: u64,
    /// Post-transform cache hits.
    hits: u64,
    /// Out-of-range vertex index that stopped the plan, if any.
    oor: Option<u32>,
}

/// Walks the index stream in triangle order, simulating the FIFO
/// post-transform cache on tags alone. Fetch ids are assigned in slot
/// order, so a hit always references a strictly smaller id than any
/// later miss — the invariant the fault-truncation walk relies on.
fn plan(req: &GeomRequest<'_>) -> Plan {
    let mut p = Plan {
        fetches: Vec::new(),
        tri_slots: Vec::with_capacity(req.tri_count),
        partial: Vec::new(),
        lookups: 0,
        hits: 0,
        oor: None,
    };
    let capacity = req.cache_entries.max(1);
    // (vertex index, fetch id) pairs; replacement mirrors VertexCache:
    // fill to capacity, then overwrite at a wrapping pointer.
    let mut entries: Vec<(u32, u32)> = Vec::with_capacity(capacity);
    let mut next_evict = 0usize;
    'tri: for t in 0..req.tri_count {
        let (i0, i1, i2) = req.primitive.triangle_indices(t);
        let mut slots = [0u32; 3];
        for (k, pos) in [i0, i1, i2].into_iter().enumerate() {
            let idx = req.indices.get(req.first + pos);
            p.lookups += 1;
            if let Some(&(_, fid)) = entries.iter().find(|(tag, _)| *tag == idx) {
                p.hits += 1;
                slots[k] = fid;
                continue;
            }
            let base = idx as usize * req.attrs;
            if base + req.attrs > req.data.len() {
                p.oor = Some(idx);
                p.partial = slots[..k].to_vec();
                break 'tri;
            }
            let fid = p.fetches.len() as u32;
            p.fetches.push(idx);
            if entries.len() < capacity {
                entries.push((idx, fid));
            } else {
                entries[next_evict] = (idx, fid);
                next_evict = (next_evict + 1) % capacity;
            }
            slots[k] = fid;
        }
        p.tri_slots.push(slots);
    }
    p
}

// ---- chunk scheduling --------------------------------------------------

/// Runs `jobs` through `f`, returning results in job order. With more
/// than one worker, jobs are dealt round-robin (worker `w` owns jobs
/// `w, w+W, …`) under a `std::thread::scope` — purely a scheduling
/// choice, invisible in the results.
fn run_chunks<J: Send, R: Send>(
    jobs: Vec<J>,
    workers: usize,
    f: impl Fn(usize, J) -> R + Sync,
) -> Vec<R> {
    let workers = workers.min(jobs.len()).max(1);
    if workers == 1 {
        return jobs.into_iter().enumerate().map(|(i, j)| f(i, j)).collect();
    }
    let mut buckets: Vec<Vec<(usize, J)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        buckets[i % workers].push((i, job));
    }
    let mut out: Vec<(usize, R)> = std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    bucket.into_iter().map(|(i, j)| (i, f(i, j))).collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(results) => results,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });
    out.sort_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, r)| r).collect()
}

// ---- phase 2: chunked vertex shading ----------------------------------

struct ShadeChunk {
    /// Vertices shaded to completion (finite clip position).
    shaded: u64,
    /// Shader invocations, including one that produced a non-finite
    /// position (the serial loop fetched and ran it before faulting).
    executed: u64,
    /// This chunk's shader statistics delta.
    vs_delta: ExecStats,
    /// Global fetch id of the first non-finite result, if any.
    bad: Option<u32>,
    /// Token was already tripped when the chunk started.
    cancelled: bool,
}

fn shade_chunk(
    req: &GeomRequest<'_>,
    base_fid: u32,
    idxs: &[u32],
    out: &mut [ShadedVertex],
) -> ShadeChunk {
    let mut c = ShadeChunk {
        shaded: 0,
        executed: 0,
        vs_delta: ExecStats::default(),
        bad: None,
        cancelled: false,
    };
    if req.cancel.is_some_and(|t| t.is_cancelled()) {
        c.cancelled = true;
        return c;
    }
    let mut vs = req.vs_proto.clone();
    for (j, (&idx, slot)) in idxs.iter().zip(out.iter_mut()).enumerate() {
        let base = idx as usize * req.attrs;
        let inputs = &req.data[base..base + req.attrs];
        let outputs = vs.run_vertex(req.program, inputs);
        c.executed += 1;
        let clip = outputs[0];
        if !(clip.x.is_finite() && clip.y.is_finite() && clip.z.is_finite() && clip.w.is_finite())
        {
            c.bad = Some(base_fid + j as u32);
            break;
        }
        let mut varyings = [Vec4::ZERO; MAX_VARYINGS];
        varyings.copy_from_slice(&outputs[1..1 + MAX_VARYINGS]);
        *slot = ShadedVertex { clip, varyings };
        c.shaded += 1;
    }
    c.vs_delta = *vs.stats();
    c
}

// ---- phase 3: chunked clip / cull / setup -----------------------------

struct SetupChunk {
    tris: Vec<(TriangleSetup, StencilState)>,
    shard: GeomShard,
    cancelled: bool,
}

fn setup_chunk(
    st: &SetupState,
    cancel: Option<&CancelToken>,
    slots: &[[u32; 3]],
    shaded: &[ShadedVertex],
) -> SetupChunk {
    let mut c = SetupChunk { tris: Vec::new(), shard: GeomShard::default(), cancelled: false };
    if let Some(tok) = cancel {
        // Same total budget charge as the serial loop's one tick per
        // assembled triangle, paid a chunk at a time. Tripped runs are
        // discarded, so the coarser trip granularity is unobservable.
        tok.charge(slots.len() as u64);
        if tok.is_cancelled() {
            c.cancelled = true;
            return c;
        }
    }
    for s in slots {
        let tri = [shaded[s[0] as usize], shaded[s[1] as usize], shaded[s[2] as usize]];
        c.shard.assembled += 1;
        match clip_near(&tri) {
            ClipResult::Rejected => c.shard.clipped += 1,
            ClipResult::Accepted => setup_one(st, &tri, true, &mut c),
            ClipResult::Clipped(clipped) => {
                for sub in &clipped {
                    setup_one(st, sub, false, &mut c);
                }
            }
        }
    }
    c
}

/// Sets up one post-clip triangle; survivors land in the chunk with the
/// stencil face state they selected. Mirrors the serial `setup_triangle`.
fn setup_one(st: &SetupState, tri: &[ShadedVertex; 3], count_cull: bool, c: &mut SetupChunk) {
    let Some(setup) = TriangleSetup::new(tri, &st.viewport) else {
        // Degenerate / zero-area: discarded at setup.
        if count_cull {
            c.shard.culled += 1;
        }
        return;
    };
    if setup.is_culled(st.cull, st.front_face) {
        if count_cull {
            c.shard.culled += 1;
        }
        return;
    }
    c.shard.setup += 1;
    let front_facing = setup.is_front_facing(st.front_face);
    let stencil = if front_facing { st.stencil_front } else { st.stencil_back };
    c.tris.push((setup, stencil));
}

// ---- driver ------------------------------------------------------------

/// Runs one draw's geometry. The output is bit-identical for every
/// `workers` value; `chunk` fixes the work partition and is likewise
/// invisible in the result (chunk shards reduce in ascending chunk order
/// and all counters are exact sums).
pub(crate) fn run(req: &GeomRequest<'_>) -> GeomOutput {
    let plan = plan(req);
    let chunk = req.chunk.max(1);

    // Phase 2 — shade the miss list in parallel chunks writing disjoint
    // slices of the shared output buffer.
    let mut shaded = vec![ShadedVertex::at(Vec4::ZERO); plan.fetches.len()];
    let shade_jobs: Vec<(&[u32], &mut [ShadedVertex])> =
        plan.fetches.chunks(chunk).zip(shaded.chunks_mut(chunk)).collect();
    let shade_chunks =
        run_chunks(shade_jobs, req.workers, |i, (idxs, out)| {
            shade_chunk(req, (i * chunk) as u32, idxs, out)
        });
    if shade_chunks.iter().any(|c| c.cancelled) {
        return GeomOutput::tripped();
    }
    // Reduce in chunk order up to (and including) the first faulted
    // chunk; later chunks are work the serial loop never did, so they
    // are discarded whole.
    let mut vs_delta = ExecStats::default();
    let (mut executed, mut shaded_count) = (0u64, 0u64);
    let mut bad = None;
    for c in &shade_chunks {
        vs_delta.merge(&c.vs_delta);
        executed += c.executed;
        shaded_count += c.shaded;
        if c.bad.is_some() {
            bad = c.bad;
            break;
        }
    }

    // Fault paths: a non-finite shade result always precedes an
    // out-of-range index in serial order (every planned fetch was issued
    // at a slot strictly before the slot that stopped the plan).
    if let Some(fid) = bad {
        return truncate_at_fetch(req, &plan, &shaded, fid, executed, shaded_count, vs_delta);
    }
    if let Some(index) = plan.oor {
        return truncate_at_range(req, &plan, &shaded, vs_delta, index);
    }

    // Phase 3 — clip/cull/setup in parallel triangle chunks; survivor
    // lists concatenate in chunk order, reproducing the serial emission
    // order exactly (rasterization order affects results).
    let setup_jobs: Vec<&[[u32; 3]]> = plan.tri_slots.chunks(chunk).collect();
    let setup_chunks = run_chunks(setup_jobs, req.workers, |_, slots| {
        setup_chunk(&req.setup, req.cancel, slots, &shaded)
    });
    if setup_chunks.iter().any(|c| c.cancelled) {
        return GeomOutput::tripped();
    }
    let mut shard = GeomShard {
        indices: plan.lookups,
        vcache_hits: plan.hits,
        fetched_vertices: plan.fetches.len() as u64,
        shaded_vertices: shaded_count,
        vs_instructions: vs_delta.instructions,
        vertex_bytes: plan.fetches.len() as u64 * req.stride_bytes,
        ..GeomShard::default()
    };
    let mut tris = Vec::new();
    for mut c in setup_chunks {
        shard.merge(&c.shard);
        tris.append(&mut c.tris);
    }
    GeomOutput {
        tris,
        shard,
        vs_delta,
        ticks: req.tri_count as u64,
        error: None,
        cancelled: false,
    }
}

/// A vertex shader produced a non-finite position at miss-list slot
/// `fid`. Recomputes exactly the prefix the serial loop executed before
/// faulting: lookups/hits up to the owning index slot, every fetch up to
/// and including `fid`, and full clip/cull/setup for the triangles
/// assembled before the owning one.
fn truncate_at_fetch(
    req: &GeomRequest<'_>,
    plan: &Plan,
    shaded: &[ShadedVertex],
    fid: u32,
    executed: u64,
    shaded_count: u64,
    vs_delta: ExecStats,
) -> GeomOutput {
    // Walk the plan to find the slot that issued fetch `fid`. A slot is a
    // miss exactly when its recorded id equals the next unissued id (hits
    // reference strictly smaller ids).
    let (mut lookups, mut hits) = (0u64, 0u64);
    let mut next_fid = 0u32;
    let mut err_tri = plan.tri_slots.len();
    let mut found = false;
    'walk: for (t, slots) in plan.tri_slots.iter().enumerate() {
        for &slot in slots {
            lookups += 1;
            if slot == next_fid {
                if slot == fid {
                    err_tri = t;
                    found = true;
                    break 'walk;
                }
                next_fid += 1;
            } else {
                hits += 1;
            }
        }
    }
    if !found {
        // The faulting fetch was issued by the triangle whose planning
        // stopped at an out-of-range index; its recorded slots walk the
        // same way.
        for &slot in &plan.partial {
            lookups += 1;
            if slot == next_fid {
                if slot == fid {
                    break;
                }
                next_fid += 1;
            } else {
                hits += 1;
            }
        }
        lookups += 1; // the faulting slot's own index lookup
    }

    // Clip/cull/setup for the fully assembled triangles before the fault.
    // All their fetch ids precede `fid`, so their shaded slots are valid.
    let sc = setup_chunk(&req.setup, req.cancel, &plan.tri_slots[..err_tri], shaded);
    if sc.cancelled {
        return GeomOutput::tripped();
    }
    if let Some(tok) = req.cancel {
        tok.charge(1); // the faulting triangle's own work tick
    }
    let mut shard = sc.shard;
    shard.indices = lookups;
    shard.vcache_hits = hits;
    shard.fetched_vertices = executed;
    shard.shaded_vertices = shaded_count;
    shard.vs_instructions = vs_delta.instructions;
    shard.vertex_bytes = executed * req.stride_bytes;
    GeomOutput {
        // A faulted draw aborts before any fragment work; survivors of the
        // prefix are unobservable and dropped.
        tris: Vec::new(),
        shard,
        vs_delta,
        ticks: err_tri as u64 + 1,
        error: Some(SimError::NonFiniteVertex {
            buffer: req.vertex_buffer,
            index: plan.fetches[fid as usize],
        }),
        cancelled: false,
    }
}

/// Planning stopped at an out-of-range vertex index (and every planned
/// fetch shaded cleanly). The serial loop executed everything the plan
/// recorded — including the stopped triangle's earlier slots — before
/// faulting at the bounds check.
fn truncate_at_range(
    req: &GeomRequest<'_>,
    plan: &Plan,
    shaded: &[ShadedVertex],
    vs_delta: ExecStats,
    index: u32,
) -> GeomOutput {
    let err_tri = plan.tri_slots.len();
    let sc = setup_chunk(&req.setup, req.cancel, &plan.tri_slots, shaded);
    if sc.cancelled {
        return GeomOutput::tripped();
    }
    if let Some(tok) = req.cancel {
        tok.charge(1); // the faulting triangle's own work tick
    }
    let mut shard = sc.shard;
    shard.indices = plan.lookups;
    shard.vcache_hits = plan.hits;
    shard.fetched_vertices = plan.fetches.len() as u64;
    shard.shaded_vertices = plan.fetches.len() as u64;
    shard.vs_instructions = vs_delta.instructions;
    shard.vertex_bytes = plan.fetches.len() as u64 * req.stride_bytes;
    GeomOutput {
        tris: Vec::new(),
        shard,
        vs_delta,
        ticks: err_tri as u64 + 1,
        error: Some(SimError::IndexOutOfRange {
            what: "vertex",
            index: index as u64,
            limit: (req.data.len() / req.attrs) as u64,
        }),
        cancelled: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streamer::VertexCache;
    use gwc_api::Indices;

    /// The plan's tag-only FIFO must agree with the payload-carrying
    /// [`VertexCache`] on every stream: same hits, same miss order.
    #[test]
    fn plan_fifo_matches_vertex_cache() {
        let capacity = 4;
        // Pseudo-random index stream over a small vertex range so hits,
        // misses and evictions all occur.
        let mut x = 0x1234_5678_9abc_def0u64;
        let mut idxs = Vec::new();
        for _ in 0..300 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            idxs.push(((x >> 33) % 11) as u32);
        }
        let tri_count = idxs.len() / 3;

        // Reference: the real cache, payloads ignored.
        let mut cache = VertexCache::new(capacity);
        let mut ref_misses = Vec::new();
        for &i in &idxs[..tri_count * 3] {
            if cache.lookup(i).is_none() {
                cache.insert(i, ShadedVertex::at(Vec4::new(i as f32, 0.0, 0.0, 1.0)));
                ref_misses.push(i);
            }
        }

        // Plan over the same stream (data large enough that nothing is
        // out of range; attrs = 1).
        let data = vec![Vec4::ZERO; 16];
        let program = gwc_shader::Program::new(
            gwc_shader::ProgramKind::Vertex,
            "vs",
            vec![gwc_shader::Instr::mov(gwc_shader::Reg::out(0), gwc_shader::Src::input(0))],
        )
        .unwrap();
        let req = GeomRequest {
            data: &data,
            attrs: 1,
            stride_bytes: 16,
            vertex_buffer: 0,
            indices: &Indices::U32(idxs.clone()),
            first: 0,
            primitive: PrimitiveType::TriangleList,
            tri_count,
            program: &program,
            vs_proto: ShaderMachine::new(),
            cache_entries: capacity,
            chunk: 8,
            workers: 1,
            setup: SetupState {
                viewport: Viewport::new(16, 16),
                cull: CullMode::default(),
                front_face: FrontFace::default(),
                stencil_front: StencilState::default(),
                stencil_back: StencilState::default(),
            },
            cancel: None,
        };
        let p = plan(&req);
        assert_eq!(p.lookups, cache.lookups());
        assert_eq!(p.hits, cache.hits());
        assert_eq!(p.fetches, ref_misses);
        assert_eq!(p.tri_slots.len(), tri_count);
        assert!(p.oor.is_none());
    }

    /// Chunk results come back in job order no matter the worker count.
    #[test]
    fn run_chunks_preserves_job_order() {
        let jobs: Vec<usize> = (0..37).collect();
        for workers in [1usize, 2, 3, 8, 64] {
            let out = run_chunks(jobs.clone(), workers, |i, j| {
                assert_eq!(i, j);
                j * 10
            });
            assert_eq!(out, (0..37).map(|j| j * 10).collect::<Vec<_>>());
        }
    }
}
