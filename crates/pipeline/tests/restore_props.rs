//! Crash-consistency property tests for GWCK checkpoint restore.
//!
//! `repro replay --resume` feeds whatever bytes it finds on disk into
//! [`Gpu::restore_checkpoint`]; a torn write, a truncated copy, or
//! bit-rot must come back as a typed [`CheckpointError`] — never a
//! panic, never a silently wrong GPU. These properties mutate a genuine
//! checkpoint every way a failing disk does (the same shapes
//! `gwc-failpoints` injects at the `gwck.write` site) and assert the
//! decoder's total-function contract.

use gwc_api::{ClearMask, Command, CommandSink};
use gwc_math::Vec4;
use gwc_pipeline::{Gpu, GpuConfig};
use proptest::prelude::*;

const W: u32 = 48;
const H: u32 = 36;

/// A real checkpoint from a GPU that has done a frame of work, so every
/// section is present and non-trivial.
fn reference_blob() -> Vec<u8> {
    let mut gpu = Gpu::new(GpuConfig::r520(W, H));
    gpu.consume(&Command::Clear {
        mask: ClearMask::ALL,
        color: Vec4::new(0.2, 0.4, 0.6, 1.0),
        depth: 1.0,
        stencil: 0,
    });
    gpu.consume(&Command::EndFrame);
    gpu.save_checkpoint()
}

fn restore(bytes: &[u8]) -> Result<Gpu, gwc_pipeline::CheckpointError> {
    Gpu::restore_checkpoint(GpuConfig::r520(W, H), bytes)
}

proptest! {
    /// Truncation at any offset — the shape a short or torn write
    /// leaves — yields a typed error, never a panic. (The full blob is
    /// the one length that must restore.)
    #[test]
    fn any_truncation_fails_typed(cut in 0usize..4096) {
        let blob = reference_blob();
        prop_assume!(cut < blob.len());
        let err = restore(&blob[..cut]);
        prop_assert!(err.is_err(), "a {cut}-byte prefix of {} restored", blob.len());
    }

    /// A single flipped bit anywhere in the blob is caught — by magic,
    /// version, framing, CRC, or the section decoders — or, if it
    /// restores at all, restores to a checkpoint-identical GPU (a flip
    /// in padding the format never reads is acceptable; silent state
    /// corruption is not).
    #[test]
    fn single_bit_flips_never_corrupt_silently(pos in 0usize..4096, bit in 0u8..8) {
        let blob = reference_blob();
        prop_assume!(pos < blob.len());
        let mut bent = blob.clone();
        bent[pos] ^= 1 << bit;
        if let Ok(gpu) = restore(&bent) {
            prop_assert_eq!(
                gpu.save_checkpoint(),
                blob,
                "bit {bit} of byte {pos} changed the blob yet restored to different state"
            );
        }
    }

    /// Arbitrary byte soup — including the empty file a crashed
    /// `File::create` leaves — is rejected typed, never a panic.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = restore(&bytes);
    }

    /// Random splices of checkpoint fragments: valid framing bytes in
    /// the wrong order, duplicated sections, swapped tails. The decoder
    /// must classify every one.
    #[test]
    fn spliced_checkpoints_never_panic(at in 0usize..4096, skip in 1usize..256) {
        let blob = reference_blob();
        prop_assume!(at < blob.len());
        let mut spliced = blob[..at].to_vec();
        spliced.extend_from_slice(&blob[at.saturating_add(skip).min(blob.len())..]);
        prop_assume!(spliced.len() != blob.len());
        let err = restore(&spliced);
        prop_assert!(err.is_err(), "a spliced checkpoint (cut {at}, skip {skip}) restored");
    }
}

#[test]
fn the_unmutated_blob_restores_bit_identically() {
    let blob = reference_blob();
    let gpu = restore(&blob).expect("the genuine checkpoint restores");
    assert_eq!(gpu.save_checkpoint(), blob, "restore must round-trip");
}
