//! Fault-policy semantics: how classified errors flow through
//! `try_consume` under each [`FaultPolicy`].

use gwc_api::{ClearMask, Command, CommandSink, Indices, StateCommand, VertexLayout};
use gwc_math::Vec4;
use gwc_pipeline::{FaultPolicy, Gpu, GpuConfig, SimError};
use gwc_raster::{CullMode, PrimitiveType};
use gwc_shader::{Instr, Program, ProgramKind, Reg, Src};

const W: u32 = 64;
const H: u32 = 64;

fn passthrough_vs() -> Program {
    Program::new(ProgramKind::Vertex, "vs", vec![Instr::mov(Reg::out(0), Src::input(0))])
        .unwrap()
}

fn flat_fs() -> Program {
    Program::new(ProgramKind::Fragment, "fs", vec![Instr::mov(Reg::out(0), Src::constant(0))])
        .unwrap()
}

fn gpu_with(policy: FaultPolicy) -> Gpu {
    let mut config = GpuConfig::r520(W, H);
    config.fault_policy = policy;
    let mut gpu = Gpu::new(config);
    let quad: Vec<Vec4> = [(-0.8f32, -0.8f32), (0.8, -0.8), (0.8, 0.8), (-0.8, 0.8)]
        .iter()
        .map(|&(x, y)| Vec4::new(x, y, 0.0, 1.0))
        .collect();
    gpu.consume(&Command::CreateVertexBuffer {
        id: 0,
        layout: VertexLayout { attributes: 1, stride_bytes: 16 },
        data: quad,
    });
    gpu.consume(&Command::CreateIndexBuffer {
        id: 0,
        indices: Indices::U16(vec![0, 1, 2, 0, 2, 3]),
    });
    gpu.consume(&Command::CreateProgram { id: 0, program: passthrough_vs() });
    gpu.consume(&Command::CreateProgram { id: 1, program: flat_fs() });
    gpu.consume(&Command::State(StateCommand::Cull(CullMode::None)));
    gpu.consume(&Command::State(StateCommand::BindPrograms { vertex: 0, fragment: 1 }));
    gpu.consume(&Command::State(StateCommand::FragmentConstants {
        base: 0,
        values: vec![Vec4::new(1.0, 1.0, 1.0, 1.0)],
    }));
    gpu
}

fn clear() -> Command {
    Command::Clear {
        mask: ClearMask::ALL,
        color: Vec4::new(0.0, 0.0, 0.0, 1.0),
        depth: 1.0,
        stencil: 0,
    }
}

fn draw(vertex_buffer: u32, count: u32) -> Command {
    Command::Draw {
        vertex_buffer,
        index_buffer: 0,
        primitive: PrimitiveType::TriangleList,
        first: 0,
        count,
    }
}

#[test]
fn strict_surfaces_the_first_error() {
    let mut gpu = gpu_with(FaultPolicy::Strict);
    gpu.try_consume(&clear()).unwrap();
    // Faulty batch: vertex buffer 9 was never created.
    let err = gpu.try_consume(&draw(9, 6)).unwrap_err();
    assert!(
        matches!(err, SimError::UnboundResource { kind: "vertex-buffer", id: 9 }),
        "wrong classification: {err}"
    );
    // The error is retained as the replay's first error even though the
    // caller already saw it.
    assert!(matches!(
        gpu.first_error(),
        Some(SimError::UnboundResource { kind: "vertex-buffer", id: 9 })
    ));
    // A later, different fault does not overwrite the first one.
    let _ = gpu.try_consume(&draw(0, 9999));
    assert!(matches!(
        gpu.first_error(),
        Some(SimError::UnboundResource { kind: "vertex-buffer", id: 9 })
    ));
}

#[test]
fn skip_batch_drops_exactly_the_faulty_batch() {
    let mut clean = gpu_with(FaultPolicy::SkipBatch);
    clean.try_consume(&clear()).unwrap();
    clean.try_consume(&draw(0, 6)).unwrap();
    clean.try_consume(&Command::EndFrame).unwrap();
    let clean_frags = clean.stats().totals().frags_raster;
    assert!(clean_frags > 0, "the good batch renders fragments");

    let mut gpu = gpu_with(FaultPolicy::SkipBatch);
    gpu.try_consume(&clear()).unwrap();
    // Good batch, faulty batch (out-of-range index count), good batch.
    gpu.try_consume(&draw(0, 6)).unwrap();
    gpu.try_consume(&draw(0, 9999)).expect("SkipBatch converts the fault to Ok");
    gpu.try_consume(&draw(0, 6)).unwrap();
    gpu.try_consume(&Command::EndFrame).unwrap();

    let t = gpu.stats().totals();
    assert_eq!(t.dropped_batches, 1, "exactly the faulty batch is dropped");
    assert_eq!(t.dropped_frames, 0);
    assert_eq!(
        t.frags_raster,
        2 * clean_frags,
        "the two good batches still render in full"
    );
    assert_eq!(gpu.stats().frames().len(), 1, "the frame still completes");
    assert!(matches!(gpu.first_error(), Some(SimError::IndexOutOfRange { .. })));
    assert_eq!(gpu.stats().total_faults(), 1);
}

#[test]
fn skip_frame_drops_the_rest_of_the_frame() {
    let mut gpu = gpu_with(FaultPolicy::SkipFrame);
    gpu.try_consume(&clear()).unwrap();
    gpu.try_consume(&draw(0, 6)).unwrap();
    gpu.try_consume(&draw(9, 6)).expect("SkipFrame converts the fault to Ok");
    let before = gpu.memory().current_frame().total();
    // Subsequent work in the frame is discarded without even command-
    // processor fetch traffic (the faulting command itself still paid its
    // CP fetch before it was classified).
    gpu.try_consume(&draw(0, 6)).unwrap();
    gpu.try_consume(&clear()).unwrap();
    let after = gpu.memory().current_frame().total();
    assert_eq!(before, after, "skipped commands generate no memory traffic");
    gpu.try_consume(&Command::EndFrame).unwrap();
    assert_eq!(gpu.stats().frames().len(), 1, "EndFrame still closes the frame");
    assert_eq!(gpu.stats().totals().dropped_frames, 1);

    // The next frame renders normally again.
    gpu.try_consume(&clear()).unwrap();
    gpu.try_consume(&draw(0, 6)).unwrap();
    gpu.try_consume(&Command::EndFrame).unwrap();
    assert_eq!(gpu.stats().frames().len(), 2);
    assert!(gpu.stats().frames()[1].frags_raster > 0);
}

#[test]
fn policies_are_deterministic_across_runs() {
    // The same faulty stream replayed repeatedly under each policy
    // produces identical totals every time.
    for policy in [FaultPolicy::Strict, FaultPolicy::SkipBatch, FaultPolicy::SkipFrame] {
        let run = || {
            let mut gpu = gpu_with(policy);
            for _ in 0..3 {
                gpu.consume(&clear());
                gpu.consume(&draw(0, 6));
                gpu.consume(&draw(7, 6)); // unbound vertex buffer
                gpu.consume(&draw(0, 10_000)); // out-of-range indices
                gpu.consume(&draw(0, 6));
                gpu.consume(&Command::EndFrame);
            }
            gpu.stats().clone()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "{policy:?} diverged across identical runs");
        assert_eq!(a.frames().len(), 3, "{policy:?}: the infallible path completes frames");
        assert!(a.total_faults() > 0, "{policy:?}: faults are classified and counted");
    }
}

#[test]
fn fault_counters_classify_by_kind() {
    let mut gpu = gpu_with(FaultPolicy::SkipBatch);
    gpu.consume(&clear());
    gpu.consume(&draw(9, 6)); // unbound resource
    gpu.consume(&draw(0, 10_000)); // index out of range
    gpu.consume(&Command::EndFrame);
    assert_eq!(gpu.stats().total_faults(), 2);
    let by_kind = gpu.stats().fault_counts();
    assert!(by_kind.iter().any(|(k, n)| k.name() == "unbound-resource" && *n == 1));
    assert!(by_kind.iter().any(|(k, n)| k.name() == "index-out-of-range" && *n == 1));
}
