//! End-to-end pipeline tests: real draws through the full GPU.

use gwc_api::{ClearMask, Command, CommandSink, Indices, StateCommand, VertexLayout};
use gwc_math::Vec4;
use gwc_mem::MemClient;
use gwc_pipeline::{Gpu, GpuConfig};
use gwc_raster::{BlendFactor, BlendState, CompareFunc, CullMode, DepthState, PrimitiveType,
                 StencilOp, StencilState};
use gwc_shader::{Instr, Program, ProgramKind, Reg, Src};
use gwc_texture::{FilterMode, Image, SamplerState, TexFormat, WrapMode};

const W: u32 = 128;
const H: u32 = 128;

/// Pass-through vertex program: position from v0, texcoord varying from v1.
fn passthrough_vs() -> Program {
    Program::new(
        ProgramKind::Vertex,
        "passthrough",
        vec![
            Instr::mov(Reg::out(0), Src::input(0)),
            Instr::mov(Reg::out(1), Src::input(1)),
        ],
    )
    .unwrap()
}

/// Fragment program emitting a constant color from c0.
fn flat_fs() -> Program {
    Program::new(
        ProgramKind::Fragment,
        "flat",
        vec![Instr::mov(Reg::out(0), Src::constant(0))],
    )
    .unwrap()
}

/// Fragment program sampling texture unit 0 with the first varying.
fn textured_fs() -> Program {
    Program::new(
        ProgramKind::Fragment,
        "textured",
        vec![
            Instr::tex(Reg::temp(0), Src::input(0), 0),
            Instr::mov(Reg::out(0), Src::temp(0)),
        ],
    )
    .unwrap()
}

struct Ctx {
    gpu: Gpu,
}

impl Ctx {
    fn new() -> Ctx {
        let mut gpu = Gpu::new(GpuConfig::r520(W, H));
        // Resources: a fullscreen-ish triangle pair and a small quad.
        let quad = |cx: f32, cy: f32, half: f32, z: f32| -> Vec<Vec4> {
            // position + texcoord per vertex, 4 vertices.
            let mut data = Vec::new();
            for (dx, dy, u, v) in [
                (-half, -half, 0.0, 0.0),
                (half, -half, 1.0, 0.0),
                (half, half, 1.0, 1.0),
                (-half, half, 0.0, 1.0),
            ] {
                data.push(Vec4::new(cx + dx, cy + dy, z, 1.0));
                data.push(Vec4::new(u, v, 0.0, 0.0));
            }
            data
        };
        let layout = VertexLayout { attributes: 2, stride_bytes: 24 };
        // Buffer 0: centered quad at z=0 (depth 0.5), buffer 1: same
        // footprint farther, buffer 2: nearer.
        for (id, z) in [(0u32, 0.0f32), (1, 0.5), (2, -0.5)] {
            gpu.consume(&Command::CreateVertexBuffer {
                id,
                layout,
                data: quad(0.0, 0.0, 0.8, z),
            });
        }
        gpu.consume(&Command::CreateIndexBuffer {
            id: 0,
            indices: Indices::U16(vec![0, 1, 2, 0, 2, 3]),
        });
        gpu.consume(&Command::CreateProgram { id: 0, program: passthrough_vs() });
        gpu.consume(&Command::CreateProgram { id: 1, program: flat_fs() });
        gpu.consume(&Command::CreateProgram { id: 2, program: textured_fs() });
        gpu.consume(&Command::State(StateCommand::Cull(CullMode::None)));
        gpu.consume(&Command::State(StateCommand::BindPrograms { vertex: 0, fragment: 1 }));
        gpu.consume(&Command::State(StateCommand::FragmentConstants {
            base: 0,
            values: vec![Vec4::new(1.0, 0.0, 0.0, 1.0)],
        }));
        Ctx { gpu }
    }

    fn clear(&mut self) {
        self.gpu.consume(&Command::Clear {
            mask: ClearMask::ALL,
            color: Vec4::new(0.0, 0.0, 0.0, 1.0),
            depth: 1.0,
            stencil: 0,
        });
    }

    fn draw(&mut self, vb: u32) {
        self.gpu.consume(&Command::Draw {
            vertex_buffer: vb,
            index_buffer: 0,
            primitive: PrimitiveType::TriangleList,
            first: 0,
            count: 6,
        });
    }

    fn end_frame(&mut self) {
        self.gpu.consume(&Command::EndFrame);
    }
}

#[test]
fn draws_render_pixels() {
    let mut c = Ctx::new();
    c.clear();
    c.draw(0);
    c.end_frame();
    let fb = c.gpu.framebuffer();
    // Center pixel is red; corner stays black.
    let center = fb.pixel(W / 2, H / 2);
    assert!(center.x > 0.9 && center.y < 0.1, "center = {center:?}");
    let corner = fb.pixel(1, 1);
    assert!(corner.x < 0.1, "corner = {corner:?}");
    let f = &c.gpu.stats().frames()[0];
    // The quad covers (0.8 * 128)^2 ≈ 10486 pixels with 2 triangles.
    assert_eq!(f.assembled, 2);
    assert_eq!(f.traversed, 2);
    assert!(f.frags_raster > 9000 && f.frags_raster < 12000, "{}", f.frags_raster);
    assert_eq!(f.frags_raster, f.frags_zst);
    assert_eq!(f.frags_raster, f.frags_shaded);
    assert_eq!(f.frags_raster, f.frags_blended);
}

#[test]
fn vertex_cache_shares_quad_vertices() {
    let mut c = Ctx::new();
    c.clear();
    c.draw(0);
    c.end_frame();
    let f = &c.gpu.stats().frames()[0];
    // 6 indices, 4 distinct vertices: 2 hits.
    assert_eq!(f.indices, 6);
    assert_eq!(f.shaded_vertices, 4);
    assert_eq!(f.vcache_hits, 2);
    assert!((f.vertex_cache_hit_rate() - 1.0 / 3.0).abs() < 1e-9);
}

#[test]
fn occluded_geometry_removed_by_hz_or_z() {
    let mut c = Ctx::new();
    c.clear();
    c.draw(2); // near quad (depth 0.25)
    c.draw(1); // far quad (depth 0.75), fully occluded
    c.end_frame();
    let f = &c.gpu.stats().frames()[0];
    // The second quad's fragments must all die before shading.
    assert!(f.frags_shaded < f.frags_raster, "shaded {} raster {}", f.frags_shaded, f.frags_raster);
    assert!(f.quads_hz_removed > 0, "HZ should reject occluded quads");
    // Blended = only the visible near quad.
    assert!((f.frags_blended as i64 - (f.frags_raster / 2) as i64).abs() < 200);
}

#[test]
fn front_to_back_vs_back_to_front_overdraw() {
    // Back-to-front: everything shades. Front-to-back: the far quad dies.
    let shaded = |order: [u32; 2]| {
        let mut c = Ctx::new();
        c.clear();
        c.draw(order[0]);
        c.draw(order[1]);
        c.end_frame();
        c.gpu.stats().frames()[0].frags_shaded
    };
    let back_to_front = shaded([1, 2]);
    let front_to_back = shaded([2, 1]);
    assert!(
        back_to_front > front_to_back + 5000,
        "b2f {back_to_front} vs f2b {front_to_back}"
    );
}

#[test]
fn stencil_shadow_volume_pattern() {
    let mut c = Ctx::new();
    c.clear();
    // 1. Depth prepass: near quad fills z.
    c.draw(2);
    // 2. Stencil pass: far quad with color mask off, no depth write,
    //    zfail increments (fragments fail z behind the near quad).
    c.gpu.consume(&Command::State(StateCommand::ColorMask(false)));
    c.gpu.consume(&Command::State(StateCommand::Depth(DepthState {
        test: true,
        write: false,
        func: CompareFunc::Less,
    })));
    let sv = StencilState {
        test: true,
        func: CompareFunc::Always,
        reference: 0,
        read_mask: 0xff,
        fail: StencilOp::Keep,
        zfail: StencilOp::IncrWrap,
        pass: StencilOp::Keep,
    };
    c.gpu.consume(&Command::State(StateCommand::StencilFront(sv)));
    c.gpu.consume(&Command::State(StateCommand::StencilBack(sv)));
    c.draw(1);
    c.end_frame();
    let f = &c.gpu.stats().frames()[0];
    // HZ must NOT have removed the stencil-volume quads (zfail op active):
    // they all reach z&stencil and fail depth there.
    assert!(f.quads_zst_removed > 1000, "zst removed = {}", f.quads_zst_removed);
    // Stencil buffer recorded the shadow counts.
    assert_eq!(c.gpu.depth_buffer().stencil_at(W / 2, H / 2), 1);
    // Color-mask quads were counted for the prepass? No: prepass writes
    // color. Stencil pass quads died at zst, so no colormask count.
    assert!(f.frags_blended > 0);
}

#[test]
fn color_mask_quads_counted() {
    let mut c = Ctx::new();
    c.clear();
    c.gpu.consume(&Command::State(StateCommand::ColorMask(false)));
    c.draw(0);
    c.end_frame();
    let f = &c.gpu.stats().frames()[0];
    assert!(f.quads_colormask > 0);
    assert_eq!(f.frags_blended, 0);
    // Nothing rendered.
    assert!(c.gpu.framebuffer().pixel(W / 2, H / 2).x < 0.1);
}

#[test]
fn alpha_test_kills_transparent_quads() {
    let mut c = Ctx::new();
    c.clear();
    c.gpu.consume(&Command::State(StateCommand::AlphaTest { enabled: true, reference: 0.5 }));
    // Constant color with alpha 0.25 -> everything dies at alpha test.
    c.gpu.consume(&Command::State(StateCommand::FragmentConstants {
        base: 0,
        values: vec![Vec4::new(1.0, 0.0, 0.0, 0.25)],
    }));
    c.draw(0);
    c.end_frame();
    let f = &c.gpu.stats().frames()[0];
    assert!(f.quads_alpha_removed > 0);
    assert_eq!(f.frags_blended, 0);
    // Alpha test forces late-z: fragments were shaded first.
    assert!(f.frags_shaded > 0);
}

#[test]
fn textured_draw_samples_and_fills_caches() {
    let mut c = Ctx::new();
    let img = Image::checkerboard(64, 64, 4, [255, 255, 255, 255], [0, 0, 0, 255]);
    c.gpu.consume(&Command::CreateTexture {
        id: 0,
        image: img,
        format: TexFormat::Dxt1,
        mipmaps: true,
        sampler: SamplerState {
            wrap: WrapMode::Repeat,
            filter: FilterMode::Trilinear,
            lod_bias: 0.0,
        },
    });
    c.gpu.consume(&Command::State(StateCommand::BindTexture { unit: 0, texture: 0 }));
    c.gpu.consume(&Command::State(StateCommand::BindPrograms { vertex: 0, fragment: 2 }));
    c.clear();
    c.draw(0);
    c.end_frame();
    let f = &c.gpu.stats().frames()[0];
    assert!(f.tex_requests > 9000, "requests = {}", f.tex_requests);
    assert!(f.bilinear_samples >= f.tex_requests);
    assert!(f.fs_tex_instructions > 0);
    let l0 = c.gpu.tex_l0_stats();
    assert!(l0.hit_rate() > 0.5, "L0 hit rate = {}", l0.hit_rate());
    // The image must show the checkerboard (mean luminance mid-grey-ish).
    let lum = c.gpu.framebuffer().mean_luminance();
    assert!(lum > 0.02 && lum < 0.9, "luminance = {lum}");
    // Texture memory traffic happened.
    let tex_read = c.gpu.memory().frames()[0].client(MemClient::Texture).read;
    assert!(tex_read > 0);
}

#[test]
fn memory_distribution_covers_stages() {
    let mut c = Ctx::new();
    c.clear();
    c.draw(0);
    c.end_frame();
    let frame = c.gpu.memory().frames()[0];
    assert!(frame.client(MemClient::Vertex).read > 0, "vertex traffic");
    assert!(frame.client(MemClient::ZStencil).total() > 0, "z traffic");
    assert!(frame.client(MemClient::Color).total() > 0, "color traffic");
    assert!(frame.client(MemClient::Dac).read > 0, "dac traffic");
    assert!(frame.client(MemClient::CommandProcessor).total() > 0, "cp traffic");
    let shares: f64 = MemClient::ALL.iter().map(|&cl| frame.share(cl)).sum();
    assert!((shares - 1.0).abs() < 1e-9);
}

#[test]
fn fast_clear_makes_first_z_reads_free() {
    let mut c = Ctx::new();
    c.clear();
    c.draw(0);
    c.end_frame();
    let z = c.gpu.memory().frames()[0].client(MemClient::ZStencil);
    // With fast clear, z fills read nothing on the first touch: the read
    // side must be far below the write side for a single-layer frame.
    assert!(z.read < z.written, "read {} written {}", z.read, z.written);
}

#[test]
fn blending_reads_and_writes_color() {
    let mut c = Ctx::new();
    c.clear();
    // Co-planar additive passes need LessEqual, like multipass lighting.
    c.gpu.consume(&Command::State(StateCommand::Depth(DepthState {
        test: true,
        write: true,
        func: CompareFunc::LessEqual,
    })));
    c.gpu.consume(&Command::State(StateCommand::Blend(BlendState {
        enabled: true,
        src: BlendFactor::One,
        dst: BlendFactor::One,
    })));
    c.gpu.consume(&Command::State(StateCommand::FragmentConstants {
        base: 0,
        values: vec![Vec4::new(0.25, 0.25, 0.0, 1.0)],
    }));
    c.draw(0);
    c.draw(0);
    c.end_frame();
    // Two additive passes: 0.5 in red+green at the center.
    let p = c.gpu.framebuffer().pixel(W / 2, H / 2);
    assert!((p.x - 0.5).abs() < 0.02, "{p:?}");
    let f = &c.gpu.stats().frames()[0];
    // Overdraw of 2 at blending.
    let (_, _, _, blend_od) = f.overdraw((W * H) as u64);
    assert!(blend_od > 1.0, "blend overdraw = {blend_od}");
}

#[test]
fn culling_discards_backfaces() {
    let mut c = Ctx::new();
    c.clear();
    c.gpu.consume(&Command::State(StateCommand::Cull(CullMode::Back)));
    c.draw(0); // CCW quad: front-facing, survives
    c.end_frame();
    c.clear();
    c.gpu.consume(&Command::State(StateCommand::Cull(CullMode::Front)));
    c.draw(0); // now culled
    c.end_frame();
    let frames = c.gpu.stats().frames();
    assert_eq!(frames[0].culled, 0);
    assert_eq!(frames[0].traversed, 2);
    assert_eq!(frames[1].culled, 2);
    assert_eq!(frames[1].traversed, 0);
}

#[test]
fn quad_efficiency_reported() {
    let mut c = Ctx::new();
    c.clear();
    c.draw(0);
    c.end_frame();
    let f = &c.gpu.stats().frames()[0];
    let (raster_eff, zst_eff) = f.quad_efficiency();
    // Two large triangles: high efficiency (the paper reports >90% at
    // 1024×768; at 128×128 the diagonal-edge share is slightly larger).
    assert!(raster_eff > 0.85, "raster efficiency {raster_eff}");
    assert!(zst_eff > 0.85, "zst efficiency {zst_eff}");
}

#[test]
fn frame_series_lengths() {
    let mut c = Ctx::new();
    for _ in 0..3 {
        c.clear();
        c.draw(0);
        c.end_frame();
    }
    assert_eq!(c.gpu.stats().frames().len(), 3);
    assert_eq!(c.gpu.memory().frames().len(), 3);
    let hits = c.gpu.stats().series("vcache", |f| f.vertex_cache_hit_rate());
    assert_eq!(hits.len(), 3);
}
