//! The daemon's unit of admission: a fully-specified characterization
//! job plus its content hash.
//!
//! The hash is computed over the canonical key of everything that
//! determines the job's output — game, experiment, rung, the full
//! [`RunConfig`] (including the workload seed), and whether telemetry
//! artifacts are exported. Two submissions with the same key are the
//! same job: the second is answered from the content-addressed result
//! cache without re-execution, which is both the idempotency story
//! (retrying clients are harmless) and the O(1) repeat-request story.

use std::path::Path;

use gwc_core::RunConfig;
use gwc_harness::json::Json;
use gwc_harness::{Experiment, Job, Rung};

/// FNV-1a (64-bit) over the canonical key. A keyed cryptographic hash is
/// unnecessary: the key space is tiny (twelve games × three experiments
/// × three rungs × config grid) and collisions would only ever conflate
/// two *submitted* jobs, which the status endpoint would surface
/// immediately.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Computes the content hash for a job key.
pub fn content_hash(
    game: &str,
    experiment: Experiment,
    rung: Rung,
    config: &RunConfig,
    trace: bool,
) -> String {
    let key = format!(
        "game={game};exp={};rung={};{};trace={trace}",
        experiment.name(),
        rung.name(),
        config.cache_key(),
    );
    format!("{:016x}", fnv1a64(key.as_bytes()))
}

/// A fully-resolved submission, as journaled in the `submitted` record.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Content hash (16 lowercase hex chars) — the job's identity.
    pub hash: String,
    /// Daemon-assigned id (submission sequence number); stable across
    /// recovery because it is journaled with the spec.
    pub id: u32,
    /// Exact Table I profile name.
    pub game: String,
    /// What to run.
    pub experiment: Experiment,
    /// Degradation-ladder rung the job is admitted at.
    pub rung: Rung,
    /// Base run configuration.
    pub config: RunConfig,
    /// Whether to export telemetry artifacts for the job.
    pub trace: bool,
}

impl JobSpec {
    /// Builds a spec (and its content hash) from submission fields.
    pub fn new(
        game: String,
        experiment: Experiment,
        rung: Rung,
        config: RunConfig,
        trace: bool,
    ) -> JobSpec {
        let hash = content_hash(&game, experiment, rung, &config, trace);
        JobSpec { hash, id: 0, game, experiment, rung, config, trace }
    }

    /// The artifact file name for this job (content-addressed, relative
    /// to the data directory).
    pub fn artifact_name(&self) -> String {
        format!("art-{}.out", self.hash)
    }

    /// The stem for content-addressed side artifacts (GWCK checkpoint,
    /// telemetry traces) inside `dir`.
    pub fn artifact_stem(&self, dir: &Path) -> String {
        dir.join(format!("art-{}", self.hash)).to_string_lossy().into_owned()
    }

    /// Converts to the supervisor's [`Job`], wiring content-addressed
    /// checkpoint and trace paths under `dir`.
    pub fn to_job(&self, dir: &Path) -> Job {
        let stem = self.artifact_stem(dir);
        Job {
            id: self.id,
            game: self.game.clone(),
            experiment: self.experiment,
            config: self.config,
            start_rung: self.rung,
            checkpoint: matches!(self.experiment, Experiment::Replay)
                .then(|| format!("{stem}.gwck")),
            trace: self.trace.then(|| stem.clone()),
        }
    }

    /// Serializes for the `submitted` journal record.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("hash".into(), Json::Str(self.hash.clone())),
            ("id".into(), Json::Num(u64::from(self.id))),
            ("game".into(), Json::Str(self.game.clone())),
            ("experiment".into(), Json::Str(self.experiment.name().into())),
            ("rung".into(), Json::Str(self.rung.name().into())),
            (
                "config".into(),
                Json::Obj(vec![
                    ("api_frames".into(), Json::Num(u64::from(self.config.api_frames))),
                    ("sim_frames".into(), Json::Num(u64::from(self.config.sim_frames))),
                    ("width".into(), Json::Num(u64::from(self.config.width))),
                    ("height".into(), Json::Num(u64::from(self.config.height))),
                    ("seed".into(), Json::Num(self.config.seed)),
                ]),
            ),
            ("trace".into(), Json::Bool(self.trace)),
        ])
    }

    /// Parses a journaled spec; `None` for structural mismatches.
    pub fn from_json(v: &Json) -> Option<JobSpec> {
        let config = v.get("config")?;
        let cfg_u32 = |key: &str| u32::try_from(config.get(key)?.as_u64()?).ok();
        Some(JobSpec {
            hash: v.get("hash")?.as_str()?.to_owned(),
            id: u32::try_from(v.get("id")?.as_u64()?).ok()?,
            game: v.get("game")?.as_str()?.to_owned(),
            experiment: Experiment::from_name(v.get("experiment")?.as_str()?)?,
            rung: Rung::from_name(v.get("rung")?.as_str()?)?,
            config: RunConfig {
                api_frames: cfg_u32("api_frames")?,
                sim_frames: cfg_u32("sim_frames")?,
                width: cfg_u32("width")?,
                height: cfg_u32("height")?,
                seed: config.get("seed")?.as_u64()?,
            },
            trace: match v.get("trace")? {
                Json::Bool(b) => *b,
                _ => return None,
            },
        })
    }
}

/// Parses a `POST /jobs` submission body into a spec.
///
/// ```json
/// {"game": "Doom3/trdemo2", "experiment": "characterize",
///  "rung": "quick", "config": {"seed": 7}, "trace": false}
/// ```
///
/// `game` is required and must name a Table I profile. Everything else
/// is optional: `experiment` defaults to `characterize`, `rung` to
/// `default`, `trace` to `false`, and `config` fields override a base of
/// [`RunConfig::quick`] for the quick rung and [`RunConfig::paper`]
/// otherwise. Errors are client errors (a 400), phrased for the response
/// body.
pub fn parse_submission(body: &str) -> Result<JobSpec, String> {
    let doc = gwc_harness::json::parse(body)
        .map_err(|e| format!("bad JSON: {} at byte {}", e.message, e.offset))?;
    let game = doc
        .get("game")
        .and_then(Json::as_str)
        .ok_or("missing required string field \"game\"")?
        .to_owned();
    if gwc_workloads::GameProfile::by_name(&game).is_none() {
        return Err(format!("unknown game {game:?} (want a Table I profile name)"));
    }
    let experiment = match doc.get("experiment").map(Json::as_str) {
        None => Experiment::Characterize,
        Some(name) => name
            .and_then(Experiment::from_name)
            .ok_or("\"experiment\" must be characterize|replay|ablations")?,
    };
    let rung = match doc.get("rung").map(Json::as_str) {
        None => Rung::Default,
        Some(name) => name.and_then(Rung::from_name).ok_or("\"rung\" must be paper|default|quick")?,
    };
    let mut config = match rung {
        Rung::Quick => RunConfig::quick(),
        _ => RunConfig::paper(),
    };
    if let Some(overrides) = doc.get("config") {
        let field = |key: &str| -> Result<Option<u64>, String> {
            match overrides.get(key) {
                None => Ok(None),
                Some(v) => {
                    v.as_u64().map(Some).ok_or(format!("config field {key:?} must be a number"))
                }
            }
        };
        let u32_field = |key: &str, slot: &mut u32| -> Result<(), String> {
            if let Some(v) = field(key)? {
                *slot = u32::try_from(v).map_err(|_| format!("config field {key:?} too large"))?;
            }
            Ok(())
        };
        u32_field("api_frames", &mut config.api_frames)?;
        u32_field("sim_frames", &mut config.sim_frames)?;
        u32_field("width", &mut config.width)?;
        u32_field("height", &mut config.height)?;
        if let Some(seed) = field("seed")? {
            config.seed = seed;
        }
    }
    let trace = match doc.get("trace") {
        None => false,
        Some(Json::Bool(b)) => *b,
        Some(_) => return Err("\"trace\" must be a boolean".into()),
    };
    Ok(JobSpec::new(game, experiment, rung, config, trace))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submission_defaults_and_overrides_parse() {
        let spec = parse_submission(r#"{"game": "Doom3/trdemo2"}"#).expect("minimal");
        assert_eq!(spec.experiment, Experiment::Characterize);
        assert_eq!(spec.rung, Rung::Default);
        assert_eq!(spec.config, RunConfig::paper());
        assert!(!spec.trace);
        let spec = parse_submission(
            r#"{"game": "UT2004/Primeval", "experiment": "replay", "rung": "quick",
                "config": {"seed": 7, "sim_frames": 2}, "trace": true}"#,
        )
        .expect("full");
        assert_eq!(spec.rung, Rung::Quick);
        assert_eq!(spec.config.seed, 7);
        assert_eq!(spec.config.sim_frames, 2);
        assert_eq!(spec.config.width, RunConfig::quick().width, "quick rung base");
        assert!(spec.trace);
    }

    #[test]
    fn submission_rejections_are_client_errors() {
        for (body, needle) in [
            ("not json", "bad JSON"),
            (r#"{"experiment": "replay"}"#, "\"game\""),
            (r#"{"game": "NoSuch/demo"}"#, "unknown game"),
            (r#"{"game": "Doom3/trdemo2", "rung": "turbo"}"#, "rung"),
            (r#"{"game": "Doom3/trdemo2", "config": {"seed": "x"}}"#, "seed"),
            (r#"{"game": "Doom3/trdemo2", "trace": 1}"#, "boolean"),
        ] {
            let err = parse_submission(body).expect_err(body);
            assert!(err.contains(needle), "{body}: {err} should mention {needle}");
        }
    }

    #[test]
    fn hash_is_stable_and_sensitive() {
        let config = RunConfig::quick();
        let a = content_hash("Doom3/trdemo2", Experiment::Characterize, Rung::Quick, &config, false);
        let b = content_hash("Doom3/trdemo2", Experiment::Characterize, Rung::Quick, &config, false);
        assert_eq!(a, b, "same key, same hash");
        assert_eq!(a.len(), 16);
        // Every dimension of the key must perturb the hash.
        let mut seen = vec![a.clone()];
        for other in [
            content_hash("Quake4/demo4", Experiment::Characterize, Rung::Quick, &config, false),
            content_hash("Doom3/trdemo2", Experiment::Replay, Rung::Quick, &config, false),
            content_hash("Doom3/trdemo2", Experiment::Characterize, Rung::Default, &config, false),
            content_hash("Doom3/trdemo2", Experiment::Characterize, Rung::Quick, &config, true),
            content_hash(
                "Doom3/trdemo2",
                Experiment::Characterize,
                Rung::Quick,
                &RunConfig { seed: 999, ..config },
                false,
            ),
        ] {
            assert!(!seen.contains(&other), "key dimension failed to perturb the hash");
            seen.push(other);
        }
    }

    #[test]
    fn spec_round_trips_through_journal_json() {
        let mut spec = JobSpec::new(
            "Quake4/demo4".into(),
            Experiment::Replay,
            Rung::Default,
            RunConfig { api_frames: 7, sim_frames: 2, width: 96, height: 72, seed: 42 },
            true,
        );
        spec.id = 9;
        let parsed = JobSpec::from_json(&spec.to_json()).expect("round trip");
        assert_eq!(parsed, spec);
    }

    #[test]
    fn replay_jobs_get_content_addressed_checkpoints() {
        let spec = JobSpec::new(
            "Doom3/trdemo2".into(),
            Experiment::Replay,
            Rung::Quick,
            RunConfig::quick(),
            true,
        );
        let job = spec.to_job(Path::new("data"));
        let checkpoint = job.checkpoint.expect("replay jobs checkpoint");
        assert!(checkpoint.contains(&spec.hash), "checkpoint is content-addressed");
        assert!(checkpoint.ends_with(".gwck"));
        assert_eq!(job.trace.as_deref(), Some(spec.artifact_stem(Path::new("data")).as_str()));
    }
}
