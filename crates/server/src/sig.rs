//! SIGTERM/SIGINT observation without a libc dependency.
//!
//! The workspace vendors no crates, so there is no `libc` or `signal-hook`
//! to lean on. This module declares the C `signal(2)` entry point directly
//! and installs a handler that does the only thing an async-signal-safe
//! handler may do here: flip an [`AtomicBool`]. The accept loop runs
//! nonblocking and polls the flag, so a `SIGTERM` begins a graceful drain
//! within one poll interval even though glibc's `signal()` semantics
//! restart blocking syscalls.
//!
//! Every other crate in the workspace forbids `unsafe`; the two calls
//! below are the entire unsafe surface of the daemon, confined to this
//! module.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler; the server polls it to begin draining.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
const SIGINT: i32 = 2;
#[cfg(unix)]
const SIGTERM: i32 = 15;

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs the drain handler for `SIGTERM` and `SIGINT`.
#[cfg(unix)]
pub fn install() {
    extern "C" {
        // `sighandler_t signal(int, sighandler_t)` — both handler types
        // are C function pointers; the return value (the previous
        // handler) is pointer-sized and unused here.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    #[allow(unsafe_code)]
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

/// No-op off Unix: only `/shutdown` drains there.
#[cfg(not(unix))]
pub fn install() {}

/// Whether a drain signal has arrived (or [`request`] was called).
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Requests a drain from process context (`POST /shutdown` funnels
/// through the same flag as `SIGTERM`, so there is one drain path).
pub fn request() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clears the flag. The flag is process-global, so in-process tests that
/// exercise drain must reset it; the daemon itself never does (a second
/// `SIGTERM` during drain should stay a drain, not restart admission).
pub fn reset() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sets_the_flag_install_is_safe_to_repeat() {
        install();
        install();
        request();
        assert!(requested());
        reset();
        assert!(!requested());
    }
}
