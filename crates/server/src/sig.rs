//! SIGTERM/SIGINT observation without a libc dependency.
//!
//! The workspace vendors no crates, so there is no `libc` or `signal-hook`
//! to lean on. This module declares the C `signal(2)` entry point directly
//! and installs a handler that does the only thing an async-signal-safe
//! handler may do here: bump an [`AtomicU32`]. The accept loop runs
//! nonblocking and polls the counter, so a `SIGTERM` begins a graceful
//! drain within one poll interval even though glibc's `signal()`
//! semantics restart blocking syscalls.
//!
//! The *count* matters, not just the flag: the first signal starts a
//! graceful drain, a second one escalates to a forced drain (exit 3)
//! instead of waiting on a hung job forever.
//!
//! Every other crate in the workspace forbids `unsafe`; the two calls
//! below are the entire unsafe surface of the daemon, confined to this
//! module.

use std::sync::atomic::{AtomicU32, Ordering};

/// Bumped by the handler; the server polls it to begin (and escalate)
/// draining.
static SIGNALS: AtomicU32 = AtomicU32::new(0);

#[cfg(unix)]
const SIGINT: i32 = 2;
#[cfg(unix)]
const SIGTERM: i32 = 15;

extern "C" fn on_signal(_signum: i32) {
    // fetch_add on an atomic is async-signal-safe (lock-free on every
    // tier-1 target).
    SIGNALS.fetch_add(1, Ordering::SeqCst);
}

/// Installs the drain handler for `SIGTERM` and `SIGINT`.
#[cfg(unix)]
pub fn install() {
    extern "C" {
        // `sighandler_t signal(int, sighandler_t)` — both handler types
        // are C function pointers; the return value (the previous
        // handler) is pointer-sized and unused here.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    #[allow(unsafe_code)]
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

/// No-op off Unix: only `/shutdown` drains there.
#[cfg(not(unix))]
pub fn install() {}

/// Whether a drain signal has arrived (or [`request`] was called).
pub fn requested() -> bool {
    count() > 0
}

/// How many drain requests have arrived. 0 = keep serving, 1 = graceful
/// drain, ≥2 = force the drain.
pub fn count() -> u32 {
    SIGNALS.load(Ordering::SeqCst)
}

/// Requests a drain from process context (`POST /shutdown` funnels
/// through the same counter as `SIGTERM`, so there is one drain path —
/// and a second `/shutdown`, like a second signal, forces it).
pub fn request() {
    SIGNALS.fetch_add(1, Ordering::SeqCst);
}

/// Clears the counter. It is process-global, so in-process tests that
/// exercise drain must reset it; the daemon itself never does (a second
/// `SIGTERM` during drain escalates, it never restarts admission).
pub fn reset() {
    SIGNALS.store(0, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sets_the_flag_install_is_safe_to_repeat() {
        install();
        install();
        reset();
        request();
        assert!(requested());
        assert_eq!(count(), 1);
        request();
        assert_eq!(count(), 2, "repeat requests escalate, not saturate");
        reset();
        assert!(!requested());
    }
}
