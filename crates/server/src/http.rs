//! A deliberately small HTTP/1.1 implementation over `std::net`.
//!
//! The build environment has no registry access, so there is no hyper,
//! no tokio — and the daemon's API does not need them: every exchange is
//! one request, one response, `Connection: close`. The parser enforces
//! hard limits (header block, body size) so a malformed or hostile peer
//! costs a bounded amount of memory and one connection slot, never the
//! daemon.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Ceiling on the request line + headers.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Ceiling on a request body (a job submission is < 1 KB).
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// Per-connection socket timeout: a peer that stalls longer than this
/// mid-request forfeits the exchange.
pub const SOCKET_TIMEOUT: Duration = Duration::from_secs(10);

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Path only (any `?query` is split off and discarded).
    pub path: String,
    /// Lower-cased header names with trimmed values.
    pub headers: Vec<(String, String)>,
    /// Raw body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed; maps directly onto a 4xx.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Malformed request line or headers.
    Malformed(&'static str),
    /// Head or body exceeded its hard limit.
    TooLarge(&'static str),
    /// The peer closed or stalled mid-request.
    Io,
}

impl ParseError {
    /// The response status this error earns.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::Malformed(_) => 400,
            ParseError::TooLarge(_) => 413,
            ParseError::Io => 408,
        }
    }

    /// Human-readable detail for the response body.
    pub fn detail(&self) -> &'static str {
        match self {
            ParseError::Malformed(d) | ParseError::TooLarge(d) => d,
            ParseError::Io => "connection closed or stalled mid-request",
        }
    }
}

/// Reads one request off `stream` (which should already carry read
/// timeouts).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ParseError> {
    // Accumulate until the blank line, byte-capped.
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => return Err(ParseError::Io),
            Ok(_) => head.push(byte[0]),
            Err(_) => return Err(ParseError::Io),
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(ParseError::TooLarge("request head exceeds 16 KiB"));
        }
        if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
            break;
        }
    }
    let head = String::from_utf8(head).map_err(|_| ParseError::Malformed("head is not UTF-8"))?;
    let mut lines = head.lines();
    let request_line = lines.next().ok_or(ParseError::Malformed("empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or(ParseError::Malformed("missing method"))?.to_owned();
    let target = parts.next().ok_or(ParseError::Malformed("missing request target"))?;
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(ParseError::Malformed("expected HTTP/1.x")),
    }
    let path = target.split('?').next().unwrap_or(target).to_owned();
    if !path.starts_with('/') {
        return Err(ParseError::Malformed("request target must be an absolute path"));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let (name, value) =
            line.split_once(':').ok_or(ParseError::Malformed("header without ':'"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => {
            v.parse::<usize>().map_err(|_| ParseError::Malformed("bad content-length"))?
        }
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::TooLarge("body exceeds 64 KiB"));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        stream.read_exact(&mut body).map_err(|_| ParseError::Io)?;
    }
    Ok(Request { method, path, headers, body })
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond the defaults.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with a text body.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response { status, headers: Vec::new(), body: body.into().into_bytes() }
    }

    /// A response with a JSON body.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        let mut r = Response::text(status, body);
        r.headers.push(("Content-Type".into(), "application/json".into()));
        r
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Serializes and writes the response; errors are swallowed (the
    /// peer may already be gone, and there is nobody left to tell).
    pub fn send(&self, stream: &mut TcpStream) {
        let reason = reason(self.status);
        let mut head = format!("HTTP/1.1 {} {reason}\r\n", self.status);
        let mut has_type = false;
        for (name, value) in &self.headers {
            has_type |= name.eq_ignore_ascii_case("content-type");
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        if !has_type {
            head.push_str("Content-Type: text/plain; charset=utf-8\r\n");
        }
        head.push_str(&format!("Content-Length: {}\r\nConnection: close\r\n\r\n", self.body.len()));
        let _ = stream.write_all(head.as_bytes());
        let _ = stream.write_all(&self.body);
        let _ = stream.flush();
    }
}

/// Reason phrases for the statuses the daemon emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Round-trips raw bytes through a real socket into `read_request`.
    fn parse_bytes(bytes: &[u8]) -> Result<Request, ParseError> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let bytes = bytes.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&bytes).expect("write");
            // Keep the socket open briefly so reads see the data, then
            // close (EOF) so incomplete requests fail rather than hang.
        });
        let (mut stream, _) = listener.accept().expect("accept");
        stream.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
        let result = read_request(&mut stream);
        writer.join().expect("writer");
        result
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse_bytes(
            b"POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody",
        )
        .expect("parse");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn strips_query_and_requires_absolute_path() {
        let req = parse_bytes(b"GET /jobs/abc?verbose=1 HTTP/1.1\r\n\r\n").expect("parse");
        assert_eq!(req.path, "/jobs/abc");
        let err = parse_bytes(b"GET jobs HTTP/1.1\r\n\r\n").expect_err("relative path");
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn rejects_oversized_and_malformed() {
        let err = parse_bytes(b"GET / HTTP/1.1\r\nContent-Length: 9999999\r\n\r\n")
            .expect_err("huge body");
        assert_eq!(err.status(), 413);
        let err = parse_bytes(b"NOT-HTTP\r\n\r\n").expect_err("bad request line");
        assert_eq!(err.status(), 400);
        let err = parse_bytes(b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
            .expect_err("bad length");
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn truncated_request_times_out_cleanly() {
        // Body shorter than Content-Length: read_exact hits EOF.
        let err = parse_bytes(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
            .expect_err("truncated body");
        assert_eq!(err, ParseError::Io);
    }
}
