//! The write-ahead journal (`jobs.wal`): every job state transition is
//! durable *before* it is visible.
//!
//! # Frame format
//!
//! The journal is a flat sequence of length-prefixed, CRC-guarded
//! frames:
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! ```
//!
//! The payload is one JSON document of the manifest subset
//! ([`gwc_harness::json`]). Three record kinds exist, tagged by `"ev"`:
//!
//! - `submitted` — the full job spec, appended (and fsynced) before the
//!   submission is acknowledged to the client;
//! - `started` — a worker picked the job up (crash forensics: a
//!   `started` with no later `done` is the job that was in flight);
//! - `done` — the terminal [`ManifestEntry`] (success *or* exhausted
//!   failure), appended and fsynced before the in-memory state flips.
//!
//! # Recovery
//!
//! [`replay`] scans frames until the first torn or corrupt one — a
//! partial length prefix, a short payload, a CRC mismatch, or an
//! unparseable document — and reports the byte length of the valid
//! prefix. The caller truncates the file there (repairing the torn tail
//! a `kill -9` during `append` leaves behind) and folds the surviving
//! records: a job with a `done` record is cached; a job without one is
//! re-admitted in original submission order, which makes a recovered
//! daemon converge to the bit-identical results of an uninterrupted one
//! (job execution itself is deterministic and seeded).
//!
//! # Rotation
//!
//! The journal grows by one `started` + one `done` per executed job and
//! is compacted once it crosses a size threshold: the live state (one
//! `submitted` plus, where terminal, one `done` per job) is written to a
//! temp file, fsynced, and atomically renamed over the journal — the
//! same temp-and-rename discipline the campaign manifest uses.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};

use gwc_harness::json::{parse, Json};
use gwc_harness::{crc32, ManifestEntry};

use crate::jobspec::JobSpec;

/// Journal file name inside the data directory.
pub const WAL_FILE: &str = "jobs.wal";

/// Upper bound on a single frame payload; anything larger is corruption
/// (a real record is a few KB).
const MAX_FRAME_BYTES: u32 = 16 << 20;

/// One replayed journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A job entered the system.
    Submitted(JobSpec),
    /// A worker began executing the job with this content hash.
    Started(String),
    /// The job with this content hash reached a terminal state.
    Done {
        /// Content hash of the finished job.
        hash: String,
        /// Its durable outcome row.
        entry: ManifestEntry,
    },
}

impl Record {
    /// Serializes to the journal payload document.
    pub fn to_json(&self) -> Json {
        match self {
            Record::Submitted(spec) => Json::Obj(vec![
                ("ev".into(), Json::Str("submitted".into())),
                ("job".into(), spec.to_json()),
            ]),
            Record::Started(hash) => Json::Obj(vec![
                ("ev".into(), Json::Str("started".into())),
                ("hash".into(), Json::Str(hash.clone())),
            ]),
            Record::Done { hash, entry } => Json::Obj(vec![
                ("ev".into(), Json::Str("done".into())),
                ("hash".into(), Json::Str(hash.clone())),
                ("entry".into(), entry.to_json()),
            ]),
        }
    }

    /// Parses a journal payload document.
    pub fn from_json(v: &Json) -> Option<Record> {
        match v.get("ev")?.as_str()? {
            "submitted" => Some(Record::Submitted(JobSpec::from_json(v.get("job")?)?)),
            "started" => Some(Record::Started(v.get("hash")?.as_str()?.to_owned())),
            "done" => Some(Record::Done {
                hash: v.get("hash")?.as_str()?.to_owned(),
                entry: ManifestEntry::from_json(v.get("entry")?)?,
            }),
            _ => None,
        }
    }
}

/// Frames one payload.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// The result of scanning a journal file.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Every record in the valid prefix, in append order.
    pub records: Vec<Record>,
    /// Byte length of the valid prefix.
    pub valid_bytes: u64,
    /// Whether bytes past the valid prefix existed (torn tail or
    /// corruption) — they are discarded by [`Wal::open`].
    pub tail_discarded: bool,
}

/// Scans journal bytes up to the first torn or corrupt frame.
pub fn scan(bytes: &[u8]) -> ReplayOutcome {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = &bytes[pos..];
        if rest.len() < 8 {
            // A clean end has zero remaining bytes; 1–7 is a torn prefix.
            return ReplayOutcome {
                records,
                valid_bytes: pos as u64,
                tail_discarded: !rest.is_empty(),
            };
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        let torn = len > MAX_FRAME_BYTES
            || rest.len() < 8 + len as usize
            || crc32(&rest[8..8 + len as usize]) != crc;
        if torn {
            return ReplayOutcome { records, valid_bytes: pos as u64, tail_discarded: true };
        }
        let payload = &rest[8..8 + len as usize];
        let record = std::str::from_utf8(payload)
            .ok()
            .and_then(|text| parse(text).ok())
            .and_then(|doc| Record::from_json(&doc));
        match record {
            Some(r) => records.push(r),
            // CRC passed but the document is garbage: written by
            // something that is not us. Stop trusting the file here.
            None => {
                return ReplayOutcome { records, valid_bytes: pos as u64, tail_discarded: true }
            }
        }
        pos += 8 + len as usize;
    }
}

/// An open journal: appends are framed, CRC-guarded, and fsynced before
/// `append` returns — callers may flip in-memory state only after.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    len: u64,
}

impl Wal {
    /// Opens (creating if absent) the journal in `dir`, replaying the
    /// valid prefix and truncating any torn tail so subsequent appends
    /// start from a consistent frame boundary.
    pub fn open(dir: &Path) -> io::Result<(Wal, ReplayOutcome)> {
        let path = dir.join(WAL_FILE);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let outcome = scan(&bytes);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        if outcome.tail_discarded {
            gwc_failpoints::check("wal.open.truncate")?;
            file.set_len(outcome.valid_bytes)?;
            file.sync_all()?;
        }
        let wal = Wal { file, path, len: outcome.valid_bytes };
        Ok((wal, outcome))
    }

    /// Appends one record and fsyncs. The record is durable when this
    /// returns `Ok`.
    pub fn append(&mut self, record: &Record) -> io::Result<()> {
        let payload = record.to_json().to_pretty();
        let framed = frame(payload.as_bytes());
        gwc_failpoints::write_all("wal.append.write", &mut self.file, &framed)?;
        gwc_failpoints::check("wal.append.fsync")?;
        self.file.sync_data()?;
        self.len += framed.len() as u64;
        Ok(())
    }

    /// Current journal length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the journal holds no frames.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Compacts the journal to exactly `live` (in order), via temp file,
    /// fsync, and atomic rename. The replacement append handle is opened
    /// on the temp file *before* the rename — afterwards that inode *is*
    /// the journal, so the swap cannot half-complete and leave appends
    /// going to an unlinked file.
    ///
    /// Failures split in two by [`RotateError::journal_intact`]:
    ///
    /// - every step up to and including the rename leaves the original
    ///   journal and handle untouched on failure (`journal_intact:
    ///   true`) — genuinely non-fatal, the caller keeps appending to the
    ///   uncompacted journal;
    /// - a failed *directory fsync after the rename* is a durability
    ///   hole (`journal_intact: false`): appends now land in the new
    ///   inode, but a crash could resurface the old directory entry and
    ///   silently drop them. Callers must treat it like a failed append
    ///   and fail-stop.
    pub fn rotate(&mut self, live: &[Record]) -> Result<(), RotateError> {
        let intact = |error: io::Error| RotateError { error, journal_intact: true };
        let tmp_path = self.path.with_extension("wal.tmp");
        let mut framed = Vec::new();
        for record in live {
            framed.extend_from_slice(&frame(record.to_json().to_pretty().as_bytes()));
        }
        let written = framed.len() as u64;
        {
            let mut tmp = File::create(&tmp_path).map_err(intact)?;
            gwc_failpoints::write_all("wal.rotate.write", &mut tmp, &framed).map_err(intact)?;
            gwc_failpoints::check("wal.rotate.fsync").map_err(intact)?;
            tmp.sync_all().map_err(intact)?;
        }
        let file = OpenOptions::new().append(true).open(&tmp_path).map_err(intact)?;
        gwc_failpoints::check("wal.rotate.rename").map_err(intact)?;
        fs::rename(&tmp_path, &self.path).map_err(intact)?;
        // The rename has happened: from here the temp inode IS the
        // journal, so the handle and length swap over even on error.
        self.file = file;
        self.len = written;
        // Make the rename itself durable. If this fails, a crash can
        // resurface the pre-rotation directory entry while our appends go
        // to the new inode — report it as journal-compromising.
        let dirsync = gwc_failpoints::check("wal.rotate.dirsync").and_then(|()| {
            match self.path.parent() {
                Some(dir) => File::open(dir)?.sync_all(),
                None => Ok(()),
            }
        });
        dirsync.map_err(|error| RotateError { error, journal_intact: false })
    }
}

/// Why a [`Wal::rotate`] failed, and whether the journal survived it.
#[derive(Debug)]
pub struct RotateError {
    /// The underlying I/O failure.
    pub error: io::Error,
    /// `true`: the pre-rotation journal and append handle are untouched
    /// (the caller may keep going). `false`: the compaction rename is
    /// not durably published — further appends risk silent loss across a
    /// crash, so the caller must fail-stop.
    pub journal_intact: bool,
}

impl fmt::Display for RotateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.journal_intact {
            write!(f, "journal rotation failed (journal intact): {}", self.error)
        } else {
            write!(f, "journal rotation not durable (rename unsynced): {}", self.error)
        }
    }
}

impl std::error::Error for RotateError {}

#[cfg(test)]
mod tests {
    use super::*;
    use gwc_core::RunConfig;
    use gwc_harness::{Experiment, Rung};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gwc-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn spec(seq: u32) -> JobSpec {
        JobSpec {
            hash: format!("{seq:016x}"),
            id: seq,
            game: "Doom3/trdemo2".into(),
            experiment: Experiment::Characterize,
            rung: Rung::Quick,
            config: RunConfig::quick(),
            trace: seq.is_multiple_of(2),
        }
    }

    fn entry(id: u32) -> ManifestEntry {
        ManifestEntry {
            id,
            game: "Doom3/trdemo2".into(),
            experiment: Experiment::Characterize,
            start_rung: Rung::Quick,
            final_rung: Rung::Quick,
            outcome: gwc_harness::Outcome::Ok,
            attempts: vec!["ok".into()],
            backoff_ms: vec![0],
            work: 123,
            detail: String::new(),
            output: Some(format!("art-{id:016x}.out")),
            output_crc: 0xABCD,
            checkpoint: None,
            trace: None,
            config: RunConfig::quick(),
        }
    }

    #[test]
    fn append_and_replay_round_trip() {
        let dir = temp_dir("roundtrip");
        let records = vec![
            Record::Submitted(spec(0)),
            Record::Started("0000000000000000".into()),
            Record::Done { hash: "0000000000000000".into(), entry: entry(0) },
            Record::Submitted(spec(1)),
        ];
        {
            let (mut wal, outcome) = Wal::open(&dir).expect("open fresh");
            assert!(outcome.records.is_empty());
            for r in &records {
                wal.append(r).expect("append");
            }
        }
        let (_, outcome) = Wal::open(&dir).expect("reopen");
        assert_eq!(outcome.records, records);
        assert!(!outcome.tail_discarded);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume() {
        let dir = temp_dir("torn");
        {
            let (mut wal, _) = Wal::open(&dir).expect("open");
            wal.append(&Record::Started("aa".into())).expect("append");
            wal.append(&Record::Started("bb".into())).expect("append");
        }
        // Tear the last frame mid-payload, the shape a kill -9 leaves.
        let path = dir.join(WAL_FILE);
        let bytes = fs::read(&path).expect("read");
        fs::write(&path, &bytes[..bytes.len() - 3]).expect("tear");
        let (mut wal, outcome) = Wal::open(&dir).expect("reopen");
        assert_eq!(outcome.records, vec![Record::Started("aa".into())]);
        assert!(outcome.tail_discarded);
        // The file was repaired: a new append lands on a frame boundary.
        wal.append(&Record::Started("cc".into())).expect("append after repair");
        let (_, outcome) = Wal::open(&dir).expect("re-reopen");
        assert_eq!(
            outcome.records,
            vec![Record::Started("aa".into()), Record::Started("cc".into())]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_crc_stops_the_scan() {
        let dir = temp_dir("crc");
        {
            let (mut wal, _) = Wal::open(&dir).expect("open");
            wal.append(&Record::Started("aa".into())).expect("append");
            wal.append(&Record::Started("bb".into())).expect("append");
        }
        let path = dir.join(WAL_FILE);
        let mut bytes = fs::read(&path).expect("read");
        // Flip one payload byte of the second frame.
        let second = 8 + (u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize);
        bytes[second + 12] ^= 0x40;
        fs::write(&path, &bytes).expect("corrupt");
        let (_, outcome) = Wal::open(&dir).expect("reopen");
        assert_eq!(outcome.records, vec![Record::Started("aa".into())]);
        assert!(outcome.tail_discarded);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_compacts_to_live_state() {
        let dir = temp_dir("rotate");
        let (mut wal, _) = Wal::open(&dir).expect("open");
        for i in 0..20 {
            wal.append(&Record::Submitted(spec(i))).expect("append");
            wal.append(&Record::Started(format!("{i:016x}"))).expect("append");
            wal.append(&Record::Done { hash: format!("{i:016x}"), entry: entry(i) })
                .expect("append");
        }
        let before = wal.len();
        let live = vec![
            Record::Submitted(spec(3)),
            Record::Done { hash: "0000000000000003".into(), entry: entry(3) },
        ];
        wal.rotate(&live).expect("rotate");
        assert!(wal.len() < before, "rotation must shrink the journal");
        let (_, outcome) = Wal::open(&dir).expect("reopen");
        assert_eq!(outcome.records, live);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_rotation_leaves_the_journal_intact_and_durable() {
        let dir = temp_dir("rotate-fail");
        let (mut wal, _) = Wal::open(&dir).expect("open");
        wal.append(&Record::Started("aa".into())).expect("append");
        // Block the temp path with a directory so rotation fails before
        // the rename; the live handle must keep appending to the real,
        // linked journal.
        fs::create_dir(dir.join("jobs.wal.tmp")).expect("block tmp path");
        let live = vec![Record::Started("aa".into())];
        assert!(wal.rotate(&live).is_err(), "blocked rotation must fail");
        wal.append(&Record::Started("bb".into())).expect("append after failed rotate");
        let (_, outcome) = Wal::open(&dir).expect("reopen");
        assert_eq!(
            outcome.records,
            vec![Record::Started("aa".into()), Record::Started("bb".into())],
            "appends after a failed rotation must survive a reopen"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_file_is_discarded_entirely() {
        let dir = temp_dir("garbage");
        fs::write(dir.join(WAL_FILE), b"this is not a journal").expect("plant");
        let (wal, outcome) = Wal::open(&dir).expect("open");
        assert!(outcome.records.is_empty());
        assert!(outcome.tail_discarded);
        assert!(wal.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
