//! A one-shot HTTP/1.1 client matching the daemon's `Connection: close`
//! discipline: connect, write one request, read to EOF, parse.
//!
//! Used by `repro submit` / `repro status` and by the integration tests;
//! small enough that pulling in a real client library would cost more
//! than it saves even if the registry were reachable.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// How long the client waits for connect/read/write before giving up.
pub const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// A parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Lower-cased header names with trimmed values.
    pub headers: Vec<(String, String)>,
    /// Body bytes (everything after the blank line, to EOF).
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy — bodies are ours and always UTF-8).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Performs one exchange against `addr` (e.g. `127.0.0.1:7341`).
pub fn exchange(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// Parses a full `Connection: close` response capture.
fn parse_response(raw: &[u8]) -> io::Result<ClientResponse> {
    let bad = |detail: &str| io::Error::new(io::ErrorKind::InvalidData, detail.to_owned());
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response has no header/body separator"))?;
    let head = std::str::from_utf8(&raw[..split]).map_err(|_| bad("response head not UTF-8"))?;
    let body = raw[split + 4..].to_vec();
    let mut lines = head.lines();
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let mut parts = status_line.split_whitespace();
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(bad("not an HTTP/1.x status line")),
    }
    let status = parts
        .next()
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("unparseable status code"))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }
    }
    Ok(ClientResponse { status, headers, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_close_delimited_response() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 3\r\nContent-Type: text/plain\r\n\r\nqueue full";
        let r = parse_response(raw).expect("parse");
        assert_eq!(r.status, 429);
        assert_eq!(r.header("retry-after"), Some("3"));
        assert_eq!(r.text(), "queue full");
    }

    #[test]
    fn rejects_non_http_garbage() {
        assert!(parse_response(b"ceci n'est pas HTTP\r\n\r\n").is_err());
        assert!(parse_response(b"HTTP/1.1 two-hundred OK\r\n\r\n").is_err());
        assert!(parse_response(b"no separator at all").is_err());
    }
}
