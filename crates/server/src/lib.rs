//! `gwc-serve`: a crash-safe characterization daemon.
//!
//! The campaign runner (`repro campaign`) answers "run this whole table
//! overnight"; this crate answers "keep a characterization service up
//! for days and let clients throw jobs at it". It is a long-lived HTTP
//! daemon wrapping the same supervised execution machinery
//! ([`gwc_harness::Supervisor`]), with the robustness properties a
//! long-lived process actually needs:
//!
//! - **durability** — every job state transition is journaled to a
//!   CRC-guarded write-ahead log ([`wal`]) and fsynced *before* it takes
//!   effect, so a `kill -9` at any instant loses at most the acknowledgement
//!   in flight, never an acknowledged job;
//! - **recovery** — on boot the journal's valid prefix is replayed:
//!   finished jobs come back as cached results (artifact CRC-verified),
//!   unfinished ones re-enter the queue in submission order, and because
//!   execution is seeded and deterministic, the recovered daemon
//!   converges to bit-identical artifacts;
//! - **idempotency** — jobs are identified by a content hash of their
//!   full specification ([`jobspec`]); resubmitting a finished job is an
//!   O(1) cache hit, resubmitting a pending one is a no-op;
//! - **admission control** — a bounded queue sheds overload with
//!   `429 Retry-After` instead of buffering without bound, a global
//!   circuit breaker trips on consecutive job failures, and per-client
//!   breakers bounce peers that spam malformed requests ([`state`]);
//! - **graceful drain** — `SIGTERM` or `POST /shutdown` (loopback peers
//!   only) stops admission,
//!   lets in-flight jobs finish, leaves queued jobs journaled for the
//!   next boot, and exits 0.
//!
//! See DESIGN.md §4f for the journal format and the recovery state
//! machine.

#![deny(unsafe_code)] // allowed back in only inside `sig`
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod jobspec;
pub mod sig;
pub mod state;
pub mod wal;

use std::fs;
use std::io::{self, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use gwc_harness::json::Json;
use gwc_harness::{
    demoted_entry, entry_from_report_named, read_artifact, DirLock, ManifestEntry, Supervisor,
};

pub use jobspec::{content_hash, parse_submission, JobSpec};
pub use state::{Admission, DaemonState, Phase, StatePolicy};
pub use wal::{Record, Wal, WAL_FILE};

/// File in the data directory holding the daemon's actual bound address
/// (written after bind, so `--addr 127.0.0.1:0` is discoverable).
pub const ADDR_FILE: &str = "addr";

/// How often the accept loop and idle workers poll for drain signals.
const POLL_INTERVAL: Duration = Duration::from_millis(15);

/// Daemon configuration (the `repro serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see [`ADDR_FILE`]).
    pub addr: String,
    /// Data directory: journal, lock, artifacts.
    pub data_dir: PathBuf,
    /// Worker threads. `0` is admission-only: jobs queue and persist but
    /// nothing executes (useful for tests and for staging submissions).
    pub workers: usize,
    /// Queue and breaker tunables.
    pub policy: StatePolicy,
    /// Journal size that triggers compacting rotation.
    pub wal_rotate_bytes: u64,
    /// Concurrent connection cap; excess connections get an instant 503.
    pub max_connections: usize,
    /// How long a graceful drain may wait on in-flight jobs before the
    /// daemon forces exit (code 3). A second SIGTERM/SIGINT forces it
    /// immediately.
    pub drain_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7341".into(),
            data_dir: PathBuf::from("serve-data"),
            workers: 2,
            policy: StatePolicy::default(),
            wal_rotate_bytes: 256 * 1024,
            max_connections: 32,
            drain_timeout: Duration::from_secs(600),
        }
    }
}

/// Journal state + journal handle, guarded by one mutex so an admission
/// decision and its WAL append are a single atomic step.
struct Core {
    state: DaemonState,
    wal: Wal,
}

/// Everything the accept loop, handlers, and workers share.
struct Shared {
    core: Mutex<Core>,
    /// Signaled when work is queued or drain begins.
    work: Condvar,
    data_dir: PathBuf,
    /// Set when the journal itself fails: the daemon fail-stops (drains
    /// and exits nonzero) rather than running with durability broken.
    fatal: AtomicBool,
    /// Live connection handler count, for the shutdown grace wait.
    conns: AtomicUsize,
    /// Live worker count, so the drain loop can tell "all workers exited"
    /// from "a worker is wedged on a hung job" without blocking in
    /// `join`.
    workers_live: AtomicUsize,
}

impl Shared {
    /// Locks the core, surviving a poisoned mutex (worker panics are
    /// already isolated by the supervisor; a poisoned lock here would
    /// otherwise wedge the whole daemon).
    fn lock(&self) -> MutexGuard<'_, Core> {
        self.core.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Records a journal failure and begins an emergency drain.
    fn fail_stop(&self, what: &str, err: &io::Error) {
        eprintln!("gwc-serve: FATAL: {what}: {err}; draining");
        self.fatal.store(true, Ordering::SeqCst);
        sig::request();
        self.work.notify_all();
    }
}

/// Returns a connection slot on drop, so the count stays correct even
/// when the handler panics or its thread was never spawned — a leaked
/// slot would count toward `max_connections` forever.
struct ConnGuard(Arc<Shared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.conns.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Decrements the live-worker count however the worker exits — clean
/// return, fail-stop, or a panic that escaped the supervisor.
struct WorkerGuard<'a>(&'a Shared);

impl Drop for WorkerGuard<'_> {
    fn drop(&mut self) {
        self.0.workers_live.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Runs the daemon until drained. Returns the process exit code:
/// `0` after a clean drain, `1` after a journal-failure fail-stop,
/// `3` after a forced drain (deadline expiry or a second signal) that
/// abandoned a wedged worker.
pub fn run(cfg: &ServeConfig, supervisor: Supervisor) -> io::Result<i32> {
    fs::create_dir_all(&cfg.data_dir)?;
    let _lock = DirLock::acquire(&cfg.data_dir, "serve")
        .map_err(|e| io::Error::new(io::ErrorKind::WouldBlock, e.to_string()))?;
    sig::install();

    let listener = TcpListener::bind(&cfg.addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    fs::write(cfg.data_dir.join(ADDR_FILE), local.to_string())?;

    // Replay the journal into fresh state before accepting anything.
    let (wal, outcome) = Wal::open(&cfg.data_dir)?;
    let mut state = DaemonState::new(cfg.policy.clone());
    let recovered = fold_records(&outcome.records);
    let (mut cached, mut requeued) = (0usize, 0usize);
    for (spec, starts, entry) in recovered {
        // A "done" whose artifact went missing or rotted is not done.
        let entry = entry.filter(|e| {
            !e.outcome.is_success()
                || e.output.is_none()
                || read_artifact(&cfg.data_dir, e).is_ok()
        });
        match &entry {
            Some(_) => cached += 1,
            None => requeued += 1,
        }
        state.recover(spec, starts, entry);
    }
    eprintln!(
        "gwc-serve: listening on {local}; journal replayed: {cached} cached, {requeued} requeued{}",
        if outcome.tail_discarded { " (torn tail repaired)" } else { "" }
    );

    let shared = Arc::new(Shared {
        core: Mutex::new(Core { state, wal }),
        work: Condvar::new(),
        data_dir: cfg.data_dir.clone(),
        fatal: AtomicBool::new(false),
        conns: AtomicUsize::new(0),
        workers_live: AtomicUsize::new(0),
    });
    let supervisor = Arc::new(supervisor);

    let mut workers = Vec::new();
    for n in 0..cfg.workers {
        let shared_w = Arc::clone(&shared);
        let supervisor = Arc::clone(&supervisor);
        let rotate = cfg.wal_rotate_bytes;
        // Count the worker before it exists; its guard decrements on any
        // exit. A failed spawn never ran the closure, so undo by hand.
        shared.workers_live.fetch_add(1, Ordering::SeqCst);
        let spawned = std::thread::Builder::new()
            .name(format!("gwc-serve-worker-{n}"))
            .spawn(move || worker_loop(&shared_w, &supervisor, rotate));
        match spawned {
            Ok(handle) => workers.push(handle),
            Err(e) => {
                shared.workers_live.fetch_sub(1, Ordering::SeqCst);
                return Err(e);
            }
        }
    }
    shared.lock().state.set_ready();

    // Accept until a drain is requested. The listener is nonblocking so
    // the loop observes SIGTERM within one poll interval.
    while !sig::requested() {
        match listener.accept() {
            Ok((stream, peer)) => {
                if shared.conns.load(Ordering::SeqCst) >= cfg.max_connections {
                    let mut stream = stream;
                    http::Response::text(503, "connection limit reached\n")
                        .with_header("Retry-After", "1")
                        .send(&mut stream);
                    continue;
                }
                shared.conns.fetch_add(1, Ordering::SeqCst);
                // The guard rides inside the closure: the slot frees when
                // the handler returns, panics, or — if spawn fails and
                // drops the closure unrun — immediately.
                let guard = ConnGuard(Arc::clone(&shared));
                let shared = Arc::clone(&shared);
                let peer = peer.ip().to_string();
                let _ = std::thread::Builder::new().name("gwc-serve-conn".into()).spawn(
                    move || {
                        let _guard = guard;
                        handle_connection(&shared, stream, &peer);
                    },
                );
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL_INTERVAL),
            Err(e) => {
                eprintln!("gwc-serve: accept error: {e}");
                std::thread::sleep(POLL_INTERVAL);
            }
        }
    }

    // Drain: stop admission, let running jobs finish, keep queued jobs
    // journaled for the next boot.
    {
        let mut core = shared.lock();
        core.state.begin_drain();
        let (queued, running, done) = core.state.counts();
        eprintln!(
            "gwc-serve: draining ({running} running, {queued} queued stay journaled, {done} done)"
        );
    }
    shared.work.notify_all();
    // Wait for workers without blocking in `join`: a job wedged on a hung
    // device would otherwise pin the drain forever. The deadline and a
    // second signal both force the exit; `escalate` is the signal count
    // that means "force" — one more than what started this drain (a
    // fail-stop's own request does not count as operator escalation).
    let deadline = Instant::now() + cfg.drain_timeout;
    let mut forced = false;
    while shared.workers_live.load(Ordering::SeqCst) > 0 {
        let escalate = 2 + u32::from(shared.fatal.load(Ordering::SeqCst));
        if sig::count() >= escalate {
            eprintln!("gwc-serve: second drain signal: forcing exit");
            forced = true;
            break;
        }
        if Instant::now() >= deadline {
            eprintln!(
                "gwc-serve: drain deadline ({:?}) expired with a job still running: forcing exit",
                cfg.drain_timeout
            );
            forced = true;
            break;
        }
        shared.work.notify_all();
        std::thread::sleep(POLL_INTERVAL);
    }
    if forced {
        // Abandon the wedged worker (the process is about to exit, which
        // reaps it); everything acked is journaled, so the next boot
        // re-runs the in-flight job from its `started` record.
        eprintln!("gwc-serve: forced drain, exit 3 (in-flight work stays journaled)");
        io::stderr().flush().ok();
        return Ok(3);
    }
    for worker in workers {
        let _ = worker.join();
    }
    // Give in-flight responses a moment to finish writing.
    let grace_end = Instant::now() + Duration::from_secs(2);
    while shared.conns.load(Ordering::SeqCst) > 0 && Instant::now() < grace_end {
        std::thread::sleep(Duration::from_millis(10));
    }
    let code = i32::from(shared.fatal.load(Ordering::SeqCst));
    eprintln!("gwc-serve: drained, exit {code}");
    io::stderr().flush().ok();
    Ok(code)
}

/// Folds replayed records into per-job `(spec, starts, terminal entry)`
/// tuples, in original submission order.
pub fn fold_records(records: &[Record]) -> Vec<(JobSpec, u32, Option<ManifestEntry>)> {
    let mut order: Vec<String> = Vec::new();
    let mut by_hash = std::collections::HashMap::new();
    for record in records {
        match record {
            Record::Submitted(spec) => {
                if !by_hash.contains_key(&spec.hash) {
                    order.push(spec.hash.clone());
                    by_hash.insert(spec.hash.clone(), (spec.clone(), 0u32, None));
                }
            }
            Record::Started(hash) => {
                if let Some(row) = by_hash.get_mut(hash) {
                    row.1 += 1;
                }
            }
            Record::Done { hash, entry } => {
                if let Some(row) = by_hash.get_mut(hash) {
                    row.2 = Some(entry.clone());
                }
            }
        }
    }
    order.into_iter().map(|h| by_hash.remove(&h).expect("folded hash")).collect()
}

/// One worker: pop, journal `started`, execute outside the lock, journal
/// `done`, repeat until drain.
fn worker_loop(shared: &Shared, supervisor: &Supervisor, rotate_bytes: u64) {
    let _live = WorkerGuard(shared);
    loop {
        let spec = {
            let mut core = shared.lock();
            loop {
                if core.state.is_draining() || sig::requested() {
                    return;
                }
                if let Some(spec) = core.state.next_queued() {
                    if let Err(e) = core.wal.append(&Record::Started(spec.hash.clone())) {
                        drop(core);
                        shared.fail_stop("journaling job start", &e);
                        return;
                    }
                    core.state.commit_start(&spec.hash);
                    break spec;
                }
                // Condvar + timeout: wake on notify, but also poll so a
                // SIGTERM with an empty queue drains promptly.
                let (guard, _) = shared
                    .work
                    .wait_timeout(core, Duration::from_millis(100))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                core = guard;
            }
        };

        // The crash/hang site between the journaled `started` and the
        // job running — the torture harness aborts or wedges here to
        // prove re-run-on-restart and the forced-drain escalation.
        // Error actions are meaningless at this site (nothing has been
        // written yet), so only abort/hang have any effect.
        let _ = gwc_failpoints::check("serve.job.run");

        // The expensive part runs without the lock; the supervisor owns
        // panic isolation, watchdogs, retries, and the ladder.
        let job = spec.to_job(&shared.data_dir);
        let report = supervisor.run_job(&job);
        let entry = match entry_from_report_named(&shared.data_dir, &report, &spec.artifact_name())
        {
            Ok(entry) => entry,
            Err(e) => {
                // Typed degrade, not fail-stop: losing an artifact to
                // EIO/ENOSPC loses one result, not the daemon. The job
                // is journaled as demoted with the storage fault in its
                // detail; only WAL failures are fatal.
                eprintln!(
                    "gwc-serve: artifact for job {} not persisted, demoting: {e}",
                    spec.hash
                );
                demoted_entry(&report, "artifact", &e)
            }
        };

        let mut core = shared.lock();
        let done = Record::Done { hash: spec.hash.clone(), entry: entry.clone() };
        if let Err(e) = core.wal.append(&done) {
            drop(core);
            shared.fail_stop("journaling job completion", &e);
            return;
        }
        core.state.commit_done(&spec.hash, entry, Instant::now());
        if core.wal.len() > rotate_bytes {
            let live = core.state.snapshot();
            let before = core.wal.len();
            match core.wal.rotate(&live) {
                // Pre-rename failure is not fatal: the journal is
                // intact, merely uncompacted.
                Err(e) if e.journal_intact => {
                    eprintln!("gwc-serve: journal rotation failed (non-fatal): {e}");
                }
                // An unsynced rename is a durability hole: a crash could
                // resurface the old journal and drop every append since.
                // Same policy as a failed append — fail-stop.
                Err(e) => {
                    drop(core);
                    shared.fail_stop("making journal rotation durable", &e.error);
                    return;
                }
                Ok(()) => eprintln!(
                    "gwc-serve: journal rotated, {} -> {} bytes",
                    before,
                    core.wal.len()
                ),
            }
        }
    }
}

/// Serves one connection: client-breaker check, parse, route, respond.
fn handle_connection(shared: &Shared, mut stream: TcpStream, peer: &str) {
    let _ = stream.set_read_timeout(Some(http::SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(http::SOCKET_TIMEOUT));
    // Read the request even when the client is banned: answering before
    // consuming what the peer wrote turns the response into a TCP reset
    // on many stacks, and the read is bounded either way.
    let parsed = http::read_request(&mut stream);
    let banned = shared.lock().state.client_banned(peer, Instant::now());
    // Health probes, shutdown, and the read-only analytics views stay
    // reachable through a ban: a peer that spammed garbage must still be
    // able to see liveness, an operator on the same host must still be
    // able to drain, and a dashboard poll must not depend on the job
    // admission path at all.
    let exempt = matches!(
        &parsed,
        Ok(r) if matches!(
            (r.method.as_str(), r.path.as_str()),
            ("GET", "/healthz" | "/readyz" | "/analyze" | "/dashboard") | ("POST", "/shutdown")
        )
    );
    if let (Some(cooldown), false) = (banned, exempt) {
        http::Response::text(429, "client breaker open: too many malformed requests\n")
            .with_header("Retry-After", cooldown.as_secs().max(1).to_string())
            .send(&mut stream);
        return;
    }
    let response = match parsed {
        Err(e) => http::Response::text(e.status(), format!("{}\n", e.detail())),
        Ok(request) => route(shared, &request, peer),
    };
    // Only genuine client mistakes feed the breaker: shed load (429) and
    // unavailability (503) are the daemon's doing, not the peer's.
    let client_error = matches!(response.status, 400 | 404 | 405 | 408 | 413);
    shared.lock().state.record_client(peer, client_error, Instant::now());
    response.send(&mut stream);
}

/// Whether a peer address string (an IP, as recorded by the accept loop)
/// is loopback. Unparseable peers count as remote.
fn peer_is_loopback(peer: &str) -> bool {
    peer.parse::<std::net::IpAddr>().is_ok_and(|ip| ip.is_loopback())
}

/// Maps one request to a response.
fn route(shared: &Shared, request: &http::Request, peer: &str) -> http::Response {
    let method = request.method.as_str();
    let path = request.path.as_str();
    match (method, path) {
        ("GET", "/healthz") => http::Response::text(200, "ok\n"),
        ("GET", "/readyz") => {
            let core = shared.lock();
            if core.state.is_draining() || sig::requested() {
                http::Response::text(503, "draining\n")
            } else if core.state.is_ready() {
                http::Response::text(200, "ready\n")
            } else {
                http::Response::text(503, "recovering\n")
            }
        }
        ("GET", "/stats") => {
            let core = shared.lock();
            let (queued, running, done) = core.state.counts();
            let doc = Json::Obj(vec![
                ("queued".into(), Json::Num(queued as u64)),
                ("running".into(), Json::Num(running as u64)),
                ("done".into(), Json::Num(done as u64)),
                ("executed".into(), Json::Num(core.state.executed)),
                ("draining".into(), Json::Bool(core.state.is_draining())),
                ("journal_bytes".into(), Json::Num(core.wal.len())),
            ]);
            http::Response::json(200, doc.to_pretty())
        }
        ("POST", "/shutdown") => {
            // Drain is an operator action. The endpoint is deliberately
            // exempt from the client breaker, so on a non-loopback bind
            // any peer that could reach the socket could drain the
            // daemon at will — restrict it to local operators (SIGTERM
            // remains the drain path for remote supervision).
            if !peer_is_loopback(peer) {
                return http::Response::text(403, "shutdown is restricted to loopback peers\n");
            }
            sig::request();
            shared.work.notify_all();
            http::Response::text(200, "draining\n")
        }
        ("GET", "/analyze") => analyze_get(shared, false),
        ("GET", "/dashboard") => analyze_get(shared, true),
        ("POST", "/jobs") => submit(shared, &request.body),
        ("GET", _) if path.starts_with("/jobs/") => job_get(shared, &path["/jobs/".len()..]),
        (_, "/healthz" | "/readyz" | "/stats" | "/shutdown" | "/jobs" | "/analyze" | "/dashboard") => {
            http::Response::text(405, "method not allowed\n")
        }
        _ => http::Response::text(404, "no such endpoint\n"),
    }
}

/// `GET /analyze` (CSV) and `GET /dashboard` (HTML): the cross-run
/// analytics report over the daemon's own data directory, rebuilt per
/// request from the GWTB traces traced jobs left behind. Read-only and
/// lock-free: the scan tolerates traces appearing or being half-written
/// mid-walk (corrupt files are skipped and listed, exactly as `repro
/// analyze` would). The dashboard is also persisted to
/// `<data-dir>/dashboard.html` through the `analyze.write` failpoint
/// site — on storage failure the daemon logs, skips the file, and still
/// serves the in-memory report: a typed degrade, never a 500 and never
/// a fail-stop.
fn analyze_get(shared: &Shared, dashboard: bool) -> http::Response {
    let index = match gwc_analyze::scan(&shared.data_dir) {
        Ok(index) => index,
        Err(e) => return http::Response::text(500, format!("cannot scan data dir: {e}\n")),
    };
    let report = gwc_analyze::aggregate(&index);
    if !dashboard {
        return http::Response::text(200, gwc_analyze::csv(&report))
            .with_header("Content-Type", "text/csv; charset=utf-8");
    }
    let page = gwc_analyze::html(&report);
    let path = shared.data_dir.join("dashboard.html");
    if let Err(e) = gwc_analyze::write_report(&path, &page) {
        eprintln!(
            "gwc-serve: dashboard not persisted to {}, serving in-memory copy: {e}",
            path.display()
        );
    }
    http::Response::text(200, page).with_header("Content-Type", "text/html; charset=utf-8")
}

/// `POST /jobs`: admission control with journal-before-acknowledge.
fn submit(shared: &Shared, body: &[u8]) -> http::Response {
    let Ok(body) = std::str::from_utf8(body) else {
        return http::Response::text(400, "body must be UTF-8 JSON\n");
    };
    let spec = match parse_submission(body) {
        Ok(spec) => spec,
        Err(detail) => return http::Response::text(400, format!("{detail}\n")),
    };
    let hash = spec.hash.clone();
    let mut core = shared.lock();
    match core.state.admit(spec, Instant::now()) {
        Admission::Cached(entry) => {
            let doc = Json::Obj(vec![
                ("hash".into(), Json::Str(hash)),
                ("phase".into(), Json::Str("done".into())),
                ("cached".into(), Json::Bool(true)),
                ("entry".into(), entry.to_json()),
            ]);
            http::Response::json(200, doc.to_pretty()).with_header("X-Gwc-Cache", "hit")
        }
        Admission::AlreadyPending(phase) => {
            let doc = Json::Obj(vec![
                ("hash".into(), Json::Str(hash)),
                ("phase".into(), Json::Str(phase.into())),
                ("cached".into(), Json::Bool(false)),
            ]);
            http::Response::json(202, doc.to_pretty())
        }
        Admission::Admit(spec) => {
            let id = spec.id;
            if let Err(e) = core.wal.append(&Record::Submitted(spec.clone())) {
                drop(core);
                shared.fail_stop("journaling submission", &e);
                return http::Response::text(503, "journal failure, daemon is fail-stopping\n");
            }
            core.state.commit_admit(spec);
            drop(core);
            shared.work.notify_all();
            let doc = Json::Obj(vec![
                ("hash".into(), Json::Str(hash)),
                ("phase".into(), Json::Str("queued".into())),
                ("cached".into(), Json::Bool(false)),
                ("id".into(), Json::Num(u64::from(id))),
            ]);
            http::Response::json(202, doc.to_pretty())
        }
        Admission::ShedQueueFull(retry_after) => {
            http::Response::text(429, "queue full, try again later\n")
                .with_header("Retry-After", retry_after.max(1).to_string())
        }
        Admission::ShedBreakerOpen(retry_after) => {
            http::Response::text(503, "circuit breaker open: recent jobs keep failing\n")
                .with_header("Retry-After", retry_after.max(1).to_string())
        }
        Admission::Draining => http::Response::text(503, "not accepting jobs (draining)\n"),
    }
}

/// `GET /jobs/<hash>` and `GET /jobs/<hash>/artifact`.
fn job_get(shared: &Shared, rest: &str) -> http::Response {
    let (hash, artifact) = match rest.strip_suffix("/artifact") {
        Some(hash) => (hash, true),
        None => (rest, false),
    };
    let core = shared.lock();
    let Some(row) = core.state.job(hash) else {
        return http::Response::text(404, "unknown job hash\n");
    };
    if !artifact {
        let mut fields = vec![
            ("hash".into(), Json::Str(row.spec.hash.clone())),
            ("phase".into(), Json::Str(row.phase.name().into())),
            ("game".into(), Json::Str(row.spec.game.clone())),
            ("starts".into(), Json::Num(u64::from(row.starts))),
        ];
        if let Phase::Done(entry) = &row.phase {
            fields.push(("entry".into(), entry.to_json()));
        }
        return http::Response::json(200, Json::Obj(fields).to_pretty());
    }
    let Phase::Done(entry) = &row.phase else {
        return http::Response::text(404, "job not finished\n");
    };
    if entry.output.is_none() {
        return http::Response::text(404, "job finished without an artifact\n");
    }
    match read_artifact(&shared.data_dir, entry) {
        Ok(text) => http::Response::text(200, text),
        Err(e) => http::Response::text(500, format!("artifact unreadable: {e}\n")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gwc_core::RunConfig;
    use gwc_harness::{Experiment, Outcome, Rung};

    fn spec(seq: u32) -> JobSpec {
        JobSpec {
            hash: format!("{seq:016x}"),
            id: seq,
            game: "Doom3/trdemo2".into(),
            experiment: Experiment::Characterize,
            rung: Rung::Quick,
            config: RunConfig::quick(),
            trace: false,
        }
    }

    fn entry(seq: u32, outcome: Outcome) -> ManifestEntry {
        ManifestEntry {
            id: seq,
            game: "Doom3/trdemo2".into(),
            experiment: Experiment::Characterize,
            start_rung: Rung::Quick,
            final_rung: Rung::Quick,
            outcome,
            attempts: vec!["ok".into()],
            backoff_ms: vec![0],
            work: 1,
            detail: String::new(),
            output: None,
            output_crc: 0,
            checkpoint: None,
            trace: None,
            config: RunConfig::quick(),
        }
    }

    #[test]
    fn fold_reconstructs_lifecycle_in_submission_order() {
        let records = vec![
            Record::Submitted(spec(0)),
            Record::Submitted(spec(1)),
            Record::Started(spec(0).hash),
            Record::Done { hash: spec(0).hash, entry: entry(0, Outcome::Ok) },
            Record::Started(spec(1).hash),
            // job 1 was in flight at the crash: started, never done.
            Record::Submitted(spec(2)),
        ];
        let folded = fold_records(&records);
        assert_eq!(folded.len(), 3);
        assert_eq!(folded[0].0.hash, spec(0).hash);
        assert_eq!(folded[0].1, 1, "one start");
        assert!(folded[0].2.is_some(), "terminal");
        assert_eq!(folded[1].1, 1, "in-flight job has a start but no entry");
        assert!(folded[1].2.is_none());
        assert_eq!(folded[2].1, 0, "queued job never started");
        assert!(folded[2].2.is_none());
    }

    #[test]
    fn shutdown_gate_accepts_only_loopback_peers() {
        assert!(peer_is_loopback("127.0.0.1"));
        assert!(peer_is_loopback("::1"));
        assert!(!peer_is_loopback("10.0.0.9"));
        assert!(!peer_is_loopback("192.168.1.4"));
        assert!(!peer_is_loopback("not-an-ip"));
    }

    #[test]
    fn fold_ignores_orphan_records_and_duplicate_submissions() {
        let records = vec![
            Record::Started("feedfacefeedface".into()),
            Record::Submitted(spec(0)),
            Record::Submitted(spec(0)),
            Record::Done { hash: "feedfacefeedface".into(), entry: entry(9, Outcome::Ok) },
        ];
        let folded = fold_records(&records);
        assert_eq!(folded.len(), 1, "orphans dropped, duplicates collapsed");
        assert_eq!(folded[0].0.id, 0);
    }
}
