//! The daemon's in-memory state machine: job table, bounded admission
//! queue, and circuit breakers.
//!
//! All transitions are pure functions over [`DaemonState`] so they can
//! be unit-tested without sockets or disk. Durability ordering is the
//! caller's contract: the WAL record for a transition is appended and
//! fsynced *before* the corresponding `DaemonState` mutation is made,
//! so the journal is always ahead of (or equal to) memory, never
//! behind.
//!
//! Admission control is a bounded queue: when `queue_capacity` jobs are
//! already waiting, new work is *shed* with a retry hint rather than
//! buffered — an overloaded daemon stays alive and serves status reads;
//! it never grows without bound until the OOM killer makes the decision
//! for it.
//!
//! Two layers of circuit breaking protect the worker pool:
//!
//! - the **global breaker** watches consecutive terminal job failures;
//!   past the threshold it opens and submissions bounce with
//!   `Retry-After` until a cool-down, then a single probe job is let
//!   through (half-open) — success closes the breaker, failure reopens
//!   it;
//! - **per-client breakers** watch consecutive *request* errors (bad
//!   JSON, unknown games) per peer address; a client that spams garbage
//!   gets its requests bounced for a cool-down without costing anyone
//!   else anything.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use gwc_harness::ManifestEntry;

use crate::jobspec::JobSpec;

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub enum Phase {
    /// Journaled, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Terminal: the journaled outcome row (success or failure). Boxed —
    /// a manifest entry is an order of magnitude larger than the other
    /// variants and most rows in a live daemon are queued or running.
    Done(Box<ManifestEntry>),
}

impl Phase {
    /// Stable wire name.
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running => "running",
            Phase::Done(_) => "done",
        }
    }
}

/// One job the daemon knows about.
#[derive(Debug, Clone)]
pub struct JobRow {
    /// The journaled spec.
    pub spec: JobSpec,
    /// Current lifecycle phase.
    pub phase: Phase,
    /// How many times execution began (>1 only after crash recovery).
    pub starts: u32,
}

/// Global circuit breaker over consecutive terminal job failures.
#[derive(Debug, Clone, PartialEq)]
enum Breaker {
    Closed { consecutive_failures: u32 },
    Open { until: Instant },
    /// One probe job is in flight; its hash decides the verdict.
    HalfOpen { probe: String },
}

/// Per-client request-error tracking.
#[derive(Debug, Default, Clone)]
struct ClientRecord {
    consecutive_errors: u32,
    open_until: Option<Instant>,
}

/// Admission verdict for one submission.
#[derive(Debug, Clone, PartialEq)]
pub enum Admission {
    /// Already terminal — answer from the result cache, `O(1)`.
    Cached(Box<ManifestEntry>),
    /// Already queued or running; idempotent no-op.
    AlreadyPending(&'static str),
    /// Newly admitted (journal the spec, then call [`DaemonState::commit_admit`]).
    Admit(JobSpec),
    /// Queue full — shed with `Retry-After` this many seconds.
    ShedQueueFull(u64),
    /// Global breaker open — bounce with `Retry-After` this many seconds.
    ShedBreakerOpen(u64),
    /// Draining for shutdown; nothing new is admitted.
    Draining,
}

/// Tunables for the state machine (a subset of the full server config).
#[derive(Debug, Clone)]
pub struct StatePolicy {
    /// Bounded queue depth; submissions past it are shed.
    pub queue_capacity: usize,
    /// Consecutive job failures that open the global breaker
    /// (0 disables it).
    pub breaker_threshold: u32,
    /// How long the global breaker stays open before half-opening.
    pub breaker_cooldown: Duration,
    /// Consecutive request errors that open a client's breaker
    /// (0 disables it).
    pub client_error_threshold: u32,
    /// How long a client breaker stays open.
    pub client_cooldown: Duration,
}

impl Default for StatePolicy {
    fn default() -> Self {
        StatePolicy {
            queue_capacity: 16,
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_secs(30),
            client_error_threshold: 8,
            client_cooldown: Duration::from_secs(10),
        }
    }
}

/// The daemon's mutable core, always accessed under one mutex.
#[derive(Debug)]
pub struct DaemonState {
    policy: StatePolicy,
    jobs: HashMap<String, JobRow>,
    /// Submission order (content hashes); recovery and WAL rotation
    /// both depend on replaying it verbatim.
    order: Vec<String>,
    queue: VecDeque<String>,
    next_id: u32,
    draining: bool,
    ready: bool,
    breaker: Breaker,
    clients: HashMap<String, ClientRecord>,
    /// Jobs executed (terminal) since boot, for `/stats`.
    pub executed: u64,
}

impl DaemonState {
    /// Fresh state under `policy` (not ready until recovery finishes).
    pub fn new(policy: StatePolicy) -> DaemonState {
        DaemonState {
            policy,
            jobs: HashMap::new(),
            order: Vec::new(),
            queue: VecDeque::new(),
            next_id: 0,
            draining: false,
            ready: false,
            breaker: Breaker::Closed { consecutive_failures: 0 },
            clients: HashMap::new(),
            executed: 0,
        }
    }

    /// Marks recovery complete; `/readyz` and submissions open up.
    pub fn set_ready(&mut self) {
        self.ready = true;
    }

    /// Whether recovery finished and the pool is warm.
    pub fn is_ready(&self) -> bool {
        self.ready
    }

    /// Whether drain has begun.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Begins drain: nothing new is admitted, workers finish their
    /// current job and exit. Queued jobs stay journaled for the next
    /// boot.
    pub fn begin_drain(&mut self) {
        self.draining = true;
    }

    /// Installs a recovered job directly (no admission policy — it was
    /// already admitted in a previous life). Terminal entries go to the
    /// cache; unfinished jobs re-enter the queue in call order.
    pub fn recover(&mut self, spec: JobSpec, starts: u32, entry: Option<ManifestEntry>) {
        self.next_id = self.next_id.max(spec.id + 1);
        let hash = spec.hash.clone();
        let phase = match entry {
            Some(e) => Phase::Done(Box::new(e)),
            None => Phase::Queued,
        };
        if matches!(phase, Phase::Queued) {
            self.queue.push_back(hash.clone());
        }
        self.order.push(hash.clone());
        self.jobs.insert(hash, JobRow { spec, phase, starts });
    }

    /// Decides one submission. Pure decision: on [`Admission::Admit`]
    /// the caller journals the spec and then calls
    /// [`DaemonState::commit_admit`].
    pub fn admit(&mut self, mut spec: JobSpec, now: Instant) -> Admission {
        if let Some(row) = self.jobs.get(&spec.hash) {
            return match &row.phase {
                Phase::Done(entry) => Admission::Cached(entry.clone()),
                other => Admission::AlreadyPending(other.name()),
            };
        }
        if self.draining || !self.ready {
            return Admission::Draining;
        }
        // An expired Open only *nominates* this submission as the probe;
        // the HalfOpen transition commits on the Admit return below,
        // after the queue-capacity check. Committing it earlier would
        // wedge admission forever if the probe were then shed: HalfOpen
        // has no timeout, and its probe hash would never reach the jobs
        // map to deliver a verdict.
        let probe = match &self.breaker {
            Breaker::Open { until } if now < *until => {
                let secs = until.saturating_duration_since(now).as_secs().max(1);
                return Admission::ShedBreakerOpen(secs);
            }
            // Cool-down over: admit this one as the probe (if it fits).
            Breaker::Open { .. } => true,
            Breaker::HalfOpen { .. } => {
                // One probe at a time; everyone else waits a beat.
                return Admission::ShedBreakerOpen(1);
            }
            Breaker::Closed { .. } => false,
        };
        if self.queue.len() >= self.policy.queue_capacity {
            // Shed: hint one second per queued job (each must drain
            // through the pool before this client could be admitted).
            // An expired-Open breaker stays Open, so a later submission
            // can still become the probe once the queue has room.
            return Admission::ShedQueueFull(self.queue.len() as u64);
        }
        spec.id = self.next_id;
        if probe {
            self.breaker = Breaker::HalfOpen { probe: spec.hash.clone() };
        }
        Admission::Admit(spec)
    }

    /// Second half of admission, after the `submitted` record is
    /// durable.
    pub fn commit_admit(&mut self, spec: JobSpec) {
        self.next_id = spec.id + 1;
        let hash = spec.hash.clone();
        self.order.push(hash.clone());
        self.queue.push_back(hash.clone());
        self.jobs.insert(hash, JobRow { spec, phase: Phase::Queued, starts: 0 });
    }

    /// Pops the next queued job for a worker (`None` leaves the worker
    /// to wait or drain). The caller journals `started`, then calls
    /// [`DaemonState::commit_start`].
    pub fn next_queued(&mut self) -> Option<JobSpec> {
        let hash = self.queue.pop_front()?;
        Some(self.jobs.get(&hash).expect("queued hash has a row").spec.clone())
    }

    /// Marks a popped job running, after its `started` record is
    /// durable.
    pub fn commit_start(&mut self, hash: &str) {
        let row = self.jobs.get_mut(hash).expect("started hash has a row");
        row.phase = Phase::Running;
        row.starts += 1;
    }

    /// Marks a job terminal after its `done` record is durable, and
    /// feeds the global breaker.
    pub fn commit_done(&mut self, hash: &str, entry: ManifestEntry, now: Instant) {
        let success = entry.outcome.is_success();
        let row = self.jobs.get_mut(hash).expect("finished hash has a row");
        row.phase = Phase::Done(Box::new(entry));
        self.executed += 1;
        self.feed_breaker(hash, success, now);
    }

    fn feed_breaker(&mut self, hash: &str, success: bool, now: Instant) {
        if self.policy.breaker_threshold == 0 {
            return;
        }
        match &self.breaker {
            Breaker::HalfOpen { probe } if probe == hash => {
                self.breaker = if success {
                    Breaker::Closed { consecutive_failures: 0 }
                } else {
                    Breaker::Open { until: now + self.policy.breaker_cooldown }
                };
            }
            Breaker::HalfOpen { .. } | Breaker::Open { .. } => {}
            Breaker::Closed { consecutive_failures } => {
                let failures = if success { 0 } else { consecutive_failures + 1 };
                self.breaker = if failures >= self.policy.breaker_threshold {
                    Breaker::Open { until: now + self.policy.breaker_cooldown }
                } else {
                    Breaker::Closed { consecutive_failures: failures }
                };
            }
        }
    }

    /// Whether `client` (a peer address) is currently bounced; returns
    /// the remaining cool-down when it is.
    pub fn client_banned(&mut self, client: &str, now: Instant) -> Option<Duration> {
        let record = self.clients.get_mut(client)?;
        match record.open_until {
            Some(until) if now < until => Some(until - now),
            Some(_) => {
                // Cool-down elapsed: forgive, half-open style.
                record.open_until = None;
                record.consecutive_errors = 0;
                None
            }
            None => None,
        }
    }

    /// Feeds one request verdict into `client`'s breaker.
    pub fn record_client(&mut self, client: &str, error: bool, now: Instant) {
        if self.policy.client_error_threshold == 0 {
            return;
        }
        let record = self.clients.entry(client.to_owned()).or_default();
        if !error {
            record.consecutive_errors = 0;
            return;
        }
        record.consecutive_errors += 1;
        if record.consecutive_errors >= self.policy.client_error_threshold {
            record.open_until = Some(now + self.policy.client_cooldown);
        }
    }

    /// The row for a content hash.
    pub fn job(&self, hash: &str) -> Option<&JobRow> {
        self.jobs.get(hash)
    }

    /// `(queued, running, done)` counts for `/stats` and `/readyz`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for row in self.jobs.values() {
            match row.phase {
                Phase::Queued => c.0 += 1,
                Phase::Running => c.1 += 1,
                Phase::Done(_) => c.2 += 1,
            }
        }
        c
    }

    /// Whether any job is running (drain waits on this).
    pub fn any_running(&self) -> bool {
        self.jobs.values().any(|r| matches!(r.phase, Phase::Running))
    }

    /// Live journal state in submission order, for WAL rotation: one
    /// `submitted` per job, plus its `done` entry when terminal.
    pub fn snapshot(&self) -> Vec<crate::wal::Record> {
        let mut records = Vec::new();
        for hash in &self.order {
            let row = &self.jobs[hash];
            records.push(crate::wal::Record::Submitted(row.spec.clone()));
            if let Phase::Done(entry) = &row.phase {
                records
                    .push(crate::wal::Record::Done { hash: hash.clone(), entry: *entry.clone() });
            }
        }
        records
    }

    /// All rows in submission order (status listing).
    pub fn rows(&self) -> impl Iterator<Item = &JobRow> {
        self.order.iter().map(|h| &self.jobs[h])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gwc_core::RunConfig;
    use gwc_harness::{Experiment, Outcome, Rung};

    fn spec(game: &str, seed: u64) -> JobSpec {
        JobSpec::new(
            game.into(),
            Experiment::Characterize,
            Rung::Quick,
            RunConfig { seed, ..RunConfig::quick() },
            false,
        )
    }

    fn entry_for(spec: &JobSpec, outcome: Outcome) -> ManifestEntry {
        ManifestEntry {
            id: spec.id,
            game: spec.game.clone(),
            experiment: spec.experiment,
            start_rung: spec.rung,
            final_rung: spec.rung,
            outcome,
            attempts: vec!["ok".into()],
            backoff_ms: vec![0],
            work: 1,
            detail: String::new(),
            output: None,
            output_crc: 0,
            checkpoint: None,
            trace: None,
            config: spec.config,
        }
    }

    fn ready_state(policy: StatePolicy) -> DaemonState {
        let mut s = DaemonState::new(policy);
        s.set_ready();
        s
    }

    /// Drives one job through admit → start → done.
    fn run_one(s: &mut DaemonState, sp: JobSpec, outcome: Outcome, now: Instant) -> String {
        let admitted = match s.admit(sp, now) {
            Admission::Admit(sp) => sp,
            other => panic!("expected Admit, got {other:?}"),
        };
        let hash = admitted.hash.clone();
        s.commit_admit(admitted);
        let popped = s.next_queued().expect("queued");
        assert_eq!(popped.hash, hash);
        s.commit_start(&hash);
        let row_spec = s.job(&hash).expect("row").spec.clone();
        s.commit_done(&hash, entry_for(&row_spec, outcome), now);
        hash
    }

    #[test]
    fn duplicate_submission_hits_cache_without_requeue() {
        let now = Instant::now();
        let mut s = ready_state(StatePolicy::default());
        let hash = run_one(&mut s, spec("Doom3/trdemo2", 1), Outcome::Ok, now);
        match s.admit(spec("Doom3/trdemo2", 1), now) {
            Admission::Cached(entry) => assert_eq!(entry.outcome, Outcome::Ok),
            other => panic!("expected Cached, got {other:?}"),
        }
        assert_eq!(s.counts(), (0, 0, 1));
        assert_eq!(s.job(&hash).expect("row").starts, 1, "cache hit must not re-run");
    }

    #[test]
    fn queue_overflow_sheds_instead_of_growing() {
        let now = Instant::now();
        let mut s = ready_state(StatePolicy { queue_capacity: 2, ..StatePolicy::default() });
        for seed in 0..2 {
            match s.admit(spec("Doom3/trdemo2", seed), now) {
                Admission::Admit(sp) => s.commit_admit(sp),
                other => panic!("expected Admit, got {other:?}"),
            }
        }
        match s.admit(spec("Doom3/trdemo2", 99), now) {
            Admission::ShedQueueFull(retry) => assert!(retry >= 2),
            other => panic!("expected ShedQueueFull, got {other:?}"),
        }
        // Idempotent resubmission of a *queued* job is not shedding.
        match s.admit(spec("Doom3/trdemo2", 0), now) {
            Admission::AlreadyPending("queued") => {}
            other => panic!("expected AlreadyPending, got {other:?}"),
        }
    }

    #[test]
    fn global_breaker_opens_half_opens_and_recloses() {
        let now = Instant::now();
        let policy = StatePolicy {
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_secs(10),
            ..StatePolicy::default()
        };
        let mut s = ready_state(policy);
        run_one(&mut s, spec("Doom3/trdemo2", 1), Outcome::Panicked, now);
        run_one(&mut s, spec("Doom3/trdemo2", 2), Outcome::TimedOut, now);
        // Two consecutive failures: open.
        match s.admit(spec("Doom3/trdemo2", 3), now) {
            Admission::ShedBreakerOpen(secs) => assert!(secs >= 1),
            other => panic!("expected ShedBreakerOpen, got {other:?}"),
        }
        // After the cool-down, exactly one probe is admitted...
        let later = now + Duration::from_secs(11);
        let probe = match s.admit(spec("Doom3/trdemo2", 3), later) {
            Admission::Admit(sp) => sp,
            other => panic!("expected probe Admit, got {other:?}"),
        };
        let probe_hash = probe.hash.clone();
        s.commit_admit(probe);
        // ...and the next submission still bounces while it runs.
        match s.admit(spec("Doom3/trdemo2", 4), later) {
            Admission::ShedBreakerOpen(_) => {}
            other => panic!("expected shed during half-open, got {other:?}"),
        }
        s.next_queued().expect("probe queued");
        s.commit_start(&probe_hash);
        let e = entry_for(&s.job(&probe_hash).expect("row").spec.clone(), Outcome::Ok);
        s.commit_done(&probe_hash, e, later);
        // Probe success recloses the breaker.
        match s.admit(spec("Doom3/trdemo2", 4), later) {
            Admission::Admit(_) => {}
            other => panic!("expected Admit after reclose, got {other:?}"),
        }
    }

    #[test]
    fn probe_shed_by_full_queue_does_not_wedge_admission() {
        // Regression: the HalfOpen transition used to commit before the
        // queue-capacity check, so an expired-Open breaker meeting a full
        // queue left a probe hash that was never admitted — and HalfOpen
        // has no timeout, so every later submission shed forever.
        let now = Instant::now();
        let policy = StatePolicy {
            queue_capacity: 1,
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_secs(10),
            ..StatePolicy::default()
        };
        let mut s = ready_state(policy);
        // Open the breaker with one failure, while another job sits
        // queued (admitted before the failure) filling the queue.
        let failing = match s.admit(spec("Doom3/trdemo2", 1), now) {
            Admission::Admit(sp) => sp,
            other => panic!("expected Admit, got {other:?}"),
        };
        let failing_hash = failing.hash.clone();
        s.commit_admit(failing);
        s.next_queued().expect("pop the failing job");
        match s.admit(spec("Doom3/trdemo2", 2), now) {
            Admission::Admit(sp) => s.commit_admit(sp),
            other => panic!("expected Admit, got {other:?}"),
        }
        let e = entry_for(&s.job(&failing_hash).expect("row").spec.clone(), Outcome::Panicked);
        s.commit_start(&failing_hash);
        s.commit_done(&failing_hash, e, now);
        // Cool-down over, queue full: the probe candidate is shed on
        // queue capacity, not on the breaker...
        let later = now + Duration::from_secs(11);
        match s.admit(spec("Doom3/trdemo2", 3), later) {
            Admission::ShedQueueFull(_) => {}
            other => panic!("expected ShedQueueFull, got {other:?}"),
        }
        // ...and once the queue drains, the same submission becomes the
        // probe instead of bouncing off a wedged HalfOpen forever.
        let queued = s.next_queued().expect("drain the queued job");
        s.commit_start(&queued.hash);
        let e = entry_for(&s.job(&queued.hash).expect("row").spec.clone(), Outcome::Ok);
        s.commit_done(&queued.hash, e, later);
        match s.admit(spec("Doom3/trdemo2", 3), later) {
            Admission::Admit(_) => {}
            other => panic!("expected probe Admit after queue drained, got {other:?}"),
        }
    }

    #[test]
    fn draining_state_admits_nothing_but_serves_cache() {
        let now = Instant::now();
        let mut s = ready_state(StatePolicy::default());
        run_one(&mut s, spec("Doom3/trdemo2", 1), Outcome::Ok, now);
        s.begin_drain();
        match s.admit(spec("Doom3/trdemo2", 2), now) {
            Admission::Draining => {}
            other => panic!("expected Draining, got {other:?}"),
        }
        match s.admit(spec("Doom3/trdemo2", 1), now) {
            Admission::Cached(_) => {}
            other => panic!("cache must answer during drain, got {other:?}"),
        }
    }

    #[test]
    fn client_breaker_bounces_spammers_then_forgives() {
        let now = Instant::now();
        let policy = StatePolicy {
            client_error_threshold: 3,
            client_cooldown: Duration::from_secs(5),
            ..StatePolicy::default()
        };
        let mut s = ready_state(policy);
        for _ in 0..3 {
            assert!(s.client_banned("10.0.0.9", now).is_none());
            s.record_client("10.0.0.9", true, now);
        }
        assert!(s.client_banned("10.0.0.9", now).is_some(), "third strike bans");
        assert!(s.client_banned("10.0.0.8", now).is_none(), "other clients unaffected");
        let later = now + Duration::from_secs(6);
        assert!(s.client_banned("10.0.0.9", later).is_none(), "cool-down forgives");
        // A success resets the strike counter.
        s.record_client("10.0.0.9", true, later);
        s.record_client("10.0.0.9", false, later);
        s.record_client("10.0.0.9", true, later);
        s.record_client("10.0.0.9", true, later);
        assert!(s.client_banned("10.0.0.9", later).is_none());
    }

    #[test]
    fn recovery_requeues_unfinished_in_submission_order() {
        let now = Instant::now();
        let mut s = DaemonState::new(StatePolicy::default());
        let mut a = spec("Doom3/trdemo2", 1);
        a.id = 0;
        let mut b = spec("Quake4/demo4", 2);
        b.id = 1;
        let mut c = spec("Doom3/trdemo2", 3);
        c.id = 2;
        let done = entry_for(&a, Outcome::Ok);
        s.recover(a.clone(), 1, Some(done));
        s.recover(b.clone(), 1, None); // was running at the kill
        s.recover(c.clone(), 0, None); // was queued at the kill
        s.set_ready();
        assert_eq!(s.counts(), (2, 0, 1));
        assert_eq!(s.next_queued().expect("first").hash, b.hash);
        assert_eq!(s.next_queued().expect("second").hash, c.hash);
        // Fresh ids continue past the recovered ones.
        match s.admit(spec("Doom3/trdemo2", 4), now) {
            Admission::Admit(sp) => assert_eq!(sp.id, 3),
            other => panic!("expected Admit, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_holds_one_submitted_per_job_plus_terminal_entries() {
        let now = Instant::now();
        let mut s = ready_state(StatePolicy::default());
        run_one(&mut s, spec("Doom3/trdemo2", 1), Outcome::Ok, now);
        match s.admit(spec("Quake4/demo4", 2), now) {
            Admission::Admit(sp) => s.commit_admit(sp),
            other => panic!("expected Admit, got {other:?}"),
        }
        let snap = s.snapshot();
        assert_eq!(snap.len(), 3, "submitted+done for job 1, submitted for job 2");
        assert!(matches!(&snap[0], crate::wal::Record::Submitted(sp) if sp.id == 0));
        assert!(matches!(&snap[1], crate::wal::Record::Done { .. }));
        assert!(matches!(&snap[2], crate::wal::Record::Submitted(sp) if sp.id == 1));
    }
}
