//! In-process fault injection against the write-ahead journal.
//!
//! The torture harness (`repro torture`) proves these same boundaries
//! end to end through child processes; these tests pin the *unit*
//! contracts — which typed error each armed site produces, what lands
//! on disk, and the [`RotateError::journal_intact`] split between
//! recoverable pre-rename failures and the fail-stop dirsync hole.

use std::fs;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

use gwc_server::{Record, Wal, WAL_FILE};

/// The failpoint registry is process-global; tests that arm it must not
/// overlap.
fn exclusive() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gwc-wal-fp-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn torn_append_leaves_a_repairable_tail() {
    let _gate = exclusive();
    let dir = temp_dir("torn-append");
    {
        let (mut wal, _) = Wal::open(&dir).expect("open");
        wal.append(&Record::Started("aa".into())).expect("clean append");
        gwc_failpoints::arm("wal.append.write=torn@1", 1).expect("arm");
        let e = wal.append(&Record::Started("bb".into())).expect_err("torn append fails");
        gwc_failpoints::disarm();
        assert!(e.to_string().contains("wal.append.write"), "typed error names the site: {e}");
    }
    // The torn frame is on disk; reopening repairs it back to the last
    // full frame and appends resume from there.
    let (mut wal, outcome) = Wal::open(&dir).expect("reopen");
    assert_eq!(outcome.records, vec![Record::Started("aa".into())]);
    assert!(outcome.tail_discarded, "the partial frame must be detected and discarded");
    wal.append(&Record::Started("cc".into())).expect("append after repair");
    let (_, outcome) = Wal::open(&dir).expect("re-reopen");
    assert_eq!(outcome.records, vec![Record::Started("aa".into()), Record::Started("cc".into())]);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn fsync_failure_is_typed_and_the_frame_is_complete() {
    let _gate = exclusive();
    let dir = temp_dir("fsync");
    {
        let (mut wal, _) = Wal::open(&dir).expect("open");
        gwc_failpoints::arm("wal.append.fsync=eio@1", 1).expect("arm");
        let e = wal.append(&Record::Started("aa".into())).expect_err("fsync fails");
        gwc_failpoints::disarm();
        assert!(e.to_string().contains("wal.append.fsync"), "typed error names the site: {e}");
    }
    // The frame itself was fully written before the fsync refused — the
    // caller fail-stops anyway (durability is unproven), but a reopen
    // that *does* find the bytes must replay them, not discard them.
    let (_, outcome) = Wal::open(&dir).expect("reopen");
    assert_eq!(outcome.records, vec![Record::Started("aa".into())]);
    assert!(!outcome.tail_discarded);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn pre_rename_rotation_failures_leave_the_journal_intact() {
    let _gate = exclusive();
    for site in ["wal.rotate.write", "wal.rotate.fsync", "wal.rotate.rename"] {
        let dir = temp_dir(&site.replace('.', "-"));
        let (mut wal, _) = Wal::open(&dir).expect("open");
        wal.append(&Record::Started("aa".into())).expect("append");
        gwc_failpoints::arm(&format!("{site}=eio@1"), 1).expect("arm");
        let e = wal.rotate(&[Record::Started("aa".into())]).expect_err("rotation fails");
        gwc_failpoints::disarm();
        assert!(e.journal_intact, "{site}: pre-rename failure must report the journal intact");
        assert!(e.to_string().contains(site), "{site}: error names the site: {e}");
        // The live handle still appends to the real, linked journal.
        wal.append(&Record::Started("bb".into())).expect("append after failed rotation");
        let (_, outcome) = Wal::open(&dir).expect("reopen");
        assert_eq!(
            outcome.records,
            vec![Record::Started("aa".into()), Record::Started("bb".into())],
            "{site}: appends after the failed rotation must survive a reopen"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn post_rename_dirsync_failure_is_not_intact_but_the_swap_held() {
    let _gate = exclusive();
    let dir = temp_dir("dirsync");
    let (mut wal, _) = Wal::open(&dir).expect("open");
    for i in 0..4 {
        wal.append(&Record::Started(format!("{i:02x}"))).expect("append");
    }
    gwc_failpoints::arm("wal.rotate.dirsync=eio@1", 1).expect("arm");
    let live = vec![Record::Started("aa".into())];
    let e = wal.rotate(&live).expect_err("dirsync fails");
    gwc_failpoints::disarm();
    assert!(
        !e.journal_intact,
        "an unsynced rename is a durability hole the caller must fail-stop on"
    );
    // The rename itself went through: the compacted file is the journal
    // and the handle already points into it.
    let (_, outcome) = Wal::open(&dir).expect("reopen");
    assert_eq!(outcome.records, live);
    assert!(!wal.is_empty());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn boot_time_tail_repair_failure_is_typed() {
    let _gate = exclusive();
    let dir = temp_dir("open-truncate");
    {
        let (mut wal, _) = Wal::open(&dir).expect("open");
        wal.append(&Record::Started("aa".into())).expect("append");
    }
    let path = dir.join(WAL_FILE);
    let mut bytes = fs::read(&path).expect("read journal");
    bytes.extend_from_slice(b"\xff\xff torn tail");
    fs::write(&path, &bytes).expect("stage torn tail");
    gwc_failpoints::arm("wal.open.truncate=eio@1", 1).expect("arm");
    let e = Wal::open(&dir).expect_err("repair fails typed");
    gwc_failpoints::disarm();
    assert!(e.to_string().contains("wal.open.truncate"), "error names the site: {e}");
    // The transient cleared: the next open repairs and serves.
    let (_, outcome) = Wal::open(&dir).expect("clean reopen");
    assert_eq!(outcome.records, vec![Record::Started("aa".into())]);
    assert!(outcome.tail_discarded);
    let _ = fs::remove_dir_all(&dir);
}
