//! Property tests for the mergeable accumulators.
//!
//! The parallel fragment pipeline shards statistics across workers and
//! reduces them with `merge`; these properties pin down the contract that
//! makes that reduction deterministic: merging shards in any grouping or
//! order equals accumulating the same samples in a single stream.

use gwc_stats::{BandwidthCounter, Histogram, RunningStat};
use proptest::prelude::*;

/// Splits `samples` into `shards` round-robin shards.
fn shard<T: Copy>(samples: &[T], shards: usize) -> Vec<Vec<T>> {
    let mut out = vec![Vec::new(); shards.max(1)];
    for (i, &s) in samples.iter().enumerate() {
        out[i % shards.max(1)].push(s);
    }
    out
}

proptest! {
    /// RunningStat: sharded accumulation + merge == single-stream, and the
    /// merge is commutative.
    #[test]
    fn running_stat_merge_matches_single_stream(
        samples in prop::collection::vec(-1000.0f64..1000.0, 0..200),
        shards in 1usize..6,
    ) {
        let mut serial = RunningStat::new();
        for &x in &samples {
            serial.push(x);
        }
        let parts: Vec<RunningStat> = shard(&samples, shards)
            .iter()
            .map(|chunk| chunk.iter().copied().collect())
            .collect();
        // Left-to-right reduction.
        let mut fwd = RunningStat::new();
        for p in &parts {
            fwd.merge(p);
        }
        // Right-to-left reduction (commutativity with ordering).
        let mut rev = RunningStat::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        for m in [&fwd, &rev] {
            prop_assert_eq!(m.count(), serial.count());
            // Sums are fp additions in permuted order: exact for count/min/
            // max, tolerance-bounded for the floating sums.
            prop_assert!((m.sum() - serial.sum()).abs() <= 1e-6 * (1.0 + serial.sum().abs()));
            prop_assert_eq!(m.min(), serial.min());
            prop_assert_eq!(m.max(), serial.max());
        }
    }

    /// RunningStat merge is associative: (a+b)+c == a+(b+c) bit-for-bit on
    /// counts and min/max.
    #[test]
    fn running_stat_merge_associative(
        a in prop::collection::vec(-50.0f64..50.0, 0..50),
        b in prop::collection::vec(-50.0f64..50.0, 0..50),
        c in prop::collection::vec(-50.0f64..50.0, 0..50),
    ) {
        let sa: RunningStat = a.iter().copied().collect();
        let sb: RunningStat = b.iter().copied().collect();
        let sc: RunningStat = c.iter().copied().collect();
        let mut left = sa;
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb;
        bc.merge(&sc);
        let mut right = sa;
        right.merge(&bc);
        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.min(), right.min());
        prop_assert_eq!(left.max(), right.max());
        prop_assert!((left.sum() - right.sum()).abs() <= 1e-9 * (1.0 + left.sum().abs()));
    }

    /// Histogram: integral counts make sharded merge EXACTLY equal to the
    /// single stream, for every shard count and either reduction order.
    #[test]
    fn histogram_merge_matches_single_stream(
        samples in prop::collection::vec(-5.0f64..15.0, 0..300),
        shards in 1usize..6,
    ) {
        let mut serial = Histogram::new(0.0, 10.0, 8);
        for &x in &samples {
            serial.record(x);
        }
        let parts: Vec<Histogram> = shard(&samples, shards)
            .iter()
            .map(|chunk| {
                let mut h = Histogram::new(0.0, 10.0, 8);
                for &x in chunk {
                    h.record(x);
                }
                h
            })
            .collect();
        let mut fwd = Histogram::new(0.0, 10.0, 8);
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = Histogram::new(0.0, 10.0, 8);
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        prop_assert_eq!(&fwd, &serial);
        prop_assert_eq!(&rev, &serial);
    }

    /// Histogram merge is associative bit-for-bit.
    #[test]
    fn histogram_merge_associative(
        a in prop::collection::vec(0.0f64..10.0, 0..80),
        b in prop::collection::vec(0.0f64..10.0, 0..80),
        c in prop::collection::vec(0.0f64..10.0, 0..80),
    ) {
        let build = |xs: &[f64]| {
            let mut h = Histogram::new(0.0, 10.0, 16);
            for &x in xs {
                h.record(x);
            }
            h
        };
        let (ha, hb, hc) = (build(&a), build(&b), build(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// BandwidthCounter: all-integer state, so any shard count and any merge
    /// order is bit-identical to single-stream accumulation.
    #[test]
    fn bandwidth_counter_merge_matches_single_stream(
        txs in prop::collection::vec(0u64..4096, 0..300),
        shards in 1usize..6,
    ) {
        let mut serial = BandwidthCounter::new();
        for &b in &txs {
            serial.record(b);
        }
        let parts: Vec<BandwidthCounter> = shard(&txs, shards)
            .iter()
            .map(|chunk| {
                let mut c = BandwidthCounter::new();
                for &b in chunk {
                    c.record(b);
                }
                c
            })
            .collect();
        let mut fwd = BandwidthCounter::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = BandwidthCounter::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        prop_assert_eq!(fwd, serial);
        prop_assert_eq!(rev, serial);
    }

    /// BandwidthCounter merge is associative bit-for-bit.
    #[test]
    fn bandwidth_counter_merge_associative(
        a in prop::collection::vec(0u64..1024, 0..60),
        b in prop::collection::vec(0u64..1024, 0..60),
        c in prop::collection::vec(0u64..1024, 0..60),
    ) {
        let build = |xs: &[u64]| {
            let mut k = BandwidthCounter::new();
            for &x in xs {
                k.record(x);
            }
            k
        };
        let (ka, kb, kc) = (build(&a), build(&b), build(&c));
        let mut left = ka;
        left.merge(&kb);
        left.merge(&kc);
        let mut bc = kb;
        bc.merge(&kc);
        let mut right = ka;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }
}
