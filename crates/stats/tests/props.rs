//! Property tests for the mergeable accumulators.
//!
//! The parallel fragment pipeline shards statistics across workers and
//! reduces them with `merge`; these properties pin down the contract that
//! makes that reduction deterministic: merging shards in any grouping or
//! order equals accumulating the same samples in a single stream.

use gwc_stats::{BandwidthCounter, GeomShard, Histogram, RunningStat};
use proptest::prelude::*;

/// Builds a `GeomShard` from ten raw counter samples in field order.
fn geom_shard(v: &[u64]) -> GeomShard {
    GeomShard {
        indices: v[0],
        vcache_hits: v[1],
        fetched_vertices: v[2],
        shaded_vertices: v[3],
        vs_instructions: v[4],
        vertex_bytes: v[5],
        assembled: v[6],
        clipped: v[7],
        culled: v[8],
        setup: v[9],
    }
}

/// Splits `samples` into `shards` round-robin shards.
fn shard<T: Clone>(samples: &[T], shards: usize) -> Vec<Vec<T>> {
    let mut out = vec![Vec::new(); shards.max(1)];
    for (i, s) in samples.iter().enumerate() {
        out[i % shards.max(1)].push(s.clone());
    }
    out
}

proptest! {
    /// RunningStat: sharded accumulation + merge == single-stream, and the
    /// merge is commutative.
    #[test]
    fn running_stat_merge_matches_single_stream(
        samples in prop::collection::vec(-1000.0f64..1000.0, 0..200),
        shards in 1usize..6,
    ) {
        let mut serial = RunningStat::new();
        for &x in &samples {
            serial.push(x);
        }
        let parts: Vec<RunningStat> = shard(&samples, shards)
            .iter()
            .map(|chunk| chunk.iter().copied().collect())
            .collect();
        // Left-to-right reduction.
        let mut fwd = RunningStat::new();
        for p in &parts {
            fwd.merge(p);
        }
        // Right-to-left reduction (commutativity with ordering).
        let mut rev = RunningStat::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        for m in [&fwd, &rev] {
            prop_assert_eq!(m.count(), serial.count());
            // Sums are fp additions in permuted order: exact for count/min/
            // max, tolerance-bounded for the floating sums.
            prop_assert!((m.sum() - serial.sum()).abs() <= 1e-6 * (1.0 + serial.sum().abs()));
            prop_assert_eq!(m.min(), serial.min());
            prop_assert_eq!(m.max(), serial.max());
        }
    }

    /// RunningStat merge is associative: (a+b)+c == a+(b+c) bit-for-bit on
    /// counts and min/max.
    #[test]
    fn running_stat_merge_associative(
        a in prop::collection::vec(-50.0f64..50.0, 0..50),
        b in prop::collection::vec(-50.0f64..50.0, 0..50),
        c in prop::collection::vec(-50.0f64..50.0, 0..50),
    ) {
        let sa: RunningStat = a.iter().copied().collect();
        let sb: RunningStat = b.iter().copied().collect();
        let sc: RunningStat = c.iter().copied().collect();
        let mut left = sa;
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb;
        bc.merge(&sc);
        let mut right = sa;
        right.merge(&bc);
        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.min(), right.min());
        prop_assert_eq!(left.max(), right.max());
        prop_assert!((left.sum() - right.sum()).abs() <= 1e-9 * (1.0 + left.sum().abs()));
    }

    /// Histogram: integral counts make sharded merge EXACTLY equal to the
    /// single stream, for every shard count and either reduction order.
    #[test]
    fn histogram_merge_matches_single_stream(
        samples in prop::collection::vec(-5.0f64..15.0, 0..300),
        shards in 1usize..6,
    ) {
        let mut serial = Histogram::new(0.0, 10.0, 8);
        for &x in &samples {
            serial.record(x);
        }
        let parts: Vec<Histogram> = shard(&samples, shards)
            .iter()
            .map(|chunk| {
                let mut h = Histogram::new(0.0, 10.0, 8);
                for &x in chunk {
                    h.record(x);
                }
                h
            })
            .collect();
        let mut fwd = Histogram::new(0.0, 10.0, 8);
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = Histogram::new(0.0, 10.0, 8);
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        prop_assert_eq!(&fwd, &serial);
        prop_assert_eq!(&rev, &serial);
    }

    /// Histogram merge is associative bit-for-bit.
    #[test]
    fn histogram_merge_associative(
        a in prop::collection::vec(0.0f64..10.0, 0..80),
        b in prop::collection::vec(0.0f64..10.0, 0..80),
        c in prop::collection::vec(0.0f64..10.0, 0..80),
    ) {
        let build = |xs: &[f64]| {
            let mut h = Histogram::new(0.0, 10.0, 16);
            for &x in xs {
                h.record(x);
            }
            h
        };
        let (ha, hb, hc) = (build(&a), build(&b), build(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// BandwidthCounter: all-integer state, so any shard count and any merge
    /// order is bit-identical to single-stream accumulation.
    #[test]
    fn bandwidth_counter_merge_matches_single_stream(
        txs in prop::collection::vec(0u64..4096, 0..300),
        shards in 1usize..6,
    ) {
        let mut serial = BandwidthCounter::new();
        for &b in &txs {
            serial.record(b);
        }
        let parts: Vec<BandwidthCounter> = shard(&txs, shards)
            .iter()
            .map(|chunk| {
                let mut c = BandwidthCounter::new();
                for &b in chunk {
                    c.record(b);
                }
                c
            })
            .collect();
        let mut fwd = BandwidthCounter::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = BandwidthCounter::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        prop_assert_eq!(fwd, serial);
        prop_assert_eq!(rev, serial);
    }

    /// BandwidthCounter merge is associative bit-for-bit.
    #[test]
    fn bandwidth_counter_merge_associative(
        a in prop::collection::vec(0u64..1024, 0..60),
        b in prop::collection::vec(0u64..1024, 0..60),
        c in prop::collection::vec(0u64..1024, 0..60),
    ) {
        let build = |xs: &[u64]| {
            let mut k = BandwidthCounter::new();
            for &x in xs {
                k.record(x);
            }
            k
        };
        let (ka, kb, kc) = (build(&a), build(&b), build(&c));
        let mut left = ka;
        left.merge(&kb);
        left.merge(&kc);
        let mut bc = kb;
        bc.merge(&kc);
        let mut right = ka;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// GeomShard: all-integer state, so reducing per-chunk shards in fixed
    /// chunk order equals accumulating every event in one serial stream —
    /// the invariant that makes the parallel geometry front-end
    /// bit-identical to serial for every chunk size and thread count.
    #[test]
    fn geom_shard_merge_matches_single_stream(
        events in prop::collection::vec(
            prop::collection::vec(0u64..10_000, 10), 0..300),
        chunk in 1usize..9,
    ) {
        let mut serial = GeomShard::default();
        for e in &events {
            serial.merge(&geom_shard(e));
        }
        // Contiguous fixed-size chunks — exactly how the pipeline splits a
        // draw — reduced left to right.
        let chunks: Vec<GeomShard> = events
            .chunks(chunk)
            .map(|c| {
                let mut s = GeomShard::default();
                for e in c {
                    s.merge(&geom_shard(e));
                }
                s
            })
            .collect();
        let mut fwd = GeomShard::default();
        for s in &chunks {
            fwd.merge(s);
        }
        prop_assert_eq!(fwd, serial);
        // And round-robin sharding (a different chunking of the same
        // events), reduced in reverse order, still lands on the same sums.
        let parts: Vec<GeomShard> = shard(&events, chunk)
            .iter()
            .map(|c| {
                let mut s = GeomShard::default();
                for e in c {
                    s.merge(&geom_shard(e));
                }
                s
            })
            .collect();
        let mut rev = GeomShard::default();
        for s in parts.iter().rev() {
            rev.merge(s);
        }
        prop_assert_eq!(rev, serial);
    }

    /// GeomShard merge is associative bit-for-bit with default() as the
    /// identity.
    #[test]
    fn geom_shard_merge_associative_with_identity(
        a in prop::collection::vec(0u64..1_000_000, 10),
        b in prop::collection::vec(0u64..1_000_000, 10),
        c in prop::collection::vec(0u64..1_000_000, 10),
    ) {
        let (sa, sb, sc) = (geom_shard(&a), geom_shard(&b), geom_shard(&c));
        let mut left = sa;
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb;
        bc.merge(&sc);
        let mut right = sa;
        right.merge(&bc);
        prop_assert_eq!(left, right);

        let mut id = GeomShard::default();
        id.merge(&sa);
        prop_assert_eq!(id, sa);
        let mut back = sa;
        back.merge(&GeomShard::default());
        prop_assert_eq!(back, sa);
    }
}
