//! Aligned ASCII / CSV table rendering.

use serde::{Deserialize, Serialize};

/// Column alignment for [`Table`] rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Align {
    /// Left-aligned (labels).
    #[default]
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple table builder that renders to aligned ASCII or CSV.
///
/// ```
/// use gwc_stats::{Align, Table};
///
/// let mut t = Table::new("Demo", &["Game", "Batches"]);
/// t.align(1, Align::Right);
/// t.row(vec!["Doom3".into(), "275".into()]);
/// let s = t.to_ascii();
/// assert!(s.contains("Doom3"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            aligns: vec![Align::Left; headers.len()],
            rows: Vec::new(),
        }
    }

    /// Sets the alignment of column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn align(&mut self, col: usize, align: Align) -> &mut Self {
        self.aligns[col] = align;
        self
    }

    /// Right-aligns every column except the first (the usual layout for the
    /// paper's tables: a game name column followed by numbers).
    pub fn numeric(&mut self) -> &mut Self {
        for c in 1..self.aligns.len() {
            self.aligns[c] = Align::Right;
        }
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders to aligned ASCII with a title line and a header separator.
    pub fn to_ascii(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String], widths: &[usize], aligns: &[Align]| -> String {
            let mut line = String::new();
            for c in 0..ncols {
                if c > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[c];
                match aligns[c] {
                    Align::Left => line.push_str(&format!("{cell:<w$}", w = widths[c])),
                    Align::Right => line.push_str(&format!("{cell:>w$}", w = widths[c])),
                }
            }
            line.push('\n');
            line
        };
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&fmt_row(&self.headers, &widths, &vec![Align::Left; ncols]));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths, &self.aligns));
        }
        out
    }

    /// Renders to CSV (header row first; fields containing commas or quotes
    /// are quoted).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats an `f64` with `digits` decimal places (helper for table cells).
pub fn fmt_f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Formats a ratio as a percentage with `digits` decimal places.
pub fn fmt_pct(v: f64, digits: usize) -> String {
    format!("{:.digits$}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_alignment() {
        let mut t = Table::new("T", &["name", "value"]);
        t.numeric();
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let s = t.to_ascii();
        assert!(s.contains("== T =="));
        // Numbers right-aligned: "1" should be preceded by spaces up to width 5.
        assert!(s.contains("a          "), "got:\n{s}");
        assert!(s.lines().any(|l| l.ends_with("    1")), "got:\n{s}");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("T", &["name", "note"]);
        t.row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_f(3.456, 2), "3.46");
        assert_eq!(fmt_pct(0.375, 1), "37.5%");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new("T", &["a"]);
        assert!(t.is_empty());
        t.row(vec!["x".into()]);
        assert_eq!(t.len(), 1);
    }
}
