//! Statistics collection and presentation for the GWC suite.
//!
//! The paper reports two kinds of results: *averages over a whole timedemo*
//! (the tables) and *per-frame series* (the figures). This crate provides
//! the vocabulary for both:
//!
//! - [`RunningStat`] — streaming count/sum/mean/min/max.
//! - [`TimeSeries`] — a per-frame series with summary statistics.
//! - [`Histogram`] — fixed-width bins with quantile queries.
//! - [`bandwidth`] — byte-count → `MB/s @ fps` conversions used by
//!   Tables III, XV and XVI.
//! - [`features`] — AIWC-style architecture-independent feature vectors
//!   for cross-workload comparison and diversity ranking.
//! - [`Table`] — aligned ASCII/CSV table rendering for the `repro` harness.
//! - [`ascii_chart`] — terminal rendering of figure series.
//!
//! # Examples
//!
//! ```
//! use gwc_stats::TimeSeries;
//!
//! let mut batches = TimeSeries::new("batches/frame");
//! for f in 0..100 {
//!     batches.push(500.0 + (f % 10) as f64);
//! }
//! assert!(batches.mean() > 500.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod features;
mod geom;
mod histogram;
mod running;
mod series;
mod table;

pub use bandwidth::BandwidthCounter;
pub use features::{rank_against, FeatureInputs, FeatureVector, Ranking, FEATURE_COUNT, FEATURE_NAMES};
pub use geom::GeomShard;
pub use histogram::Histogram;
pub use running::RunningStat;
pub use series::{ascii_chart, TimeSeries};
pub use table::{fmt_f, fmt_pct, Align, Table};
