//! Byte-count → bandwidth conversions.
//!
//! The paper reports index and memory traffic as `MB/s` or `GB/s` at an
//! assumed frame rate (`BW @ 100fps` in Tables III and XV). These helpers
//! centralize those conversions and their display formatting.

use serde::{Deserialize, Serialize};

/// Bytes in a megabyte (the paper uses decimal-ish MB for bandwidth; we use
/// binary MiB consistently, which only shifts absolute numbers by ~5%).
pub const MB: f64 = 1024.0 * 1024.0;

/// Bytes in a gigabyte.
pub const GB: f64 = 1024.0 * MB;

/// Converts bytes-per-frame into bytes-per-second at `fps`.
///
/// ```
/// let bps = gwc_stats::bandwidth::bytes_per_second(1_000_000.0, 100.0);
/// assert_eq!(bps, 100_000_000.0);
/// ```
pub fn bytes_per_second(bytes_per_frame: f64, fps: f64) -> f64 {
    bytes_per_frame * fps
}

/// Converts bytes-per-frame into MB/s at `fps` (Table III's `BW @ 100fps`).
pub fn mb_per_second(bytes_per_frame: f64, fps: f64) -> f64 {
    bytes_per_second(bytes_per_frame, fps) / MB
}

/// Converts bytes-per-frame into GB/s at `fps` (Table XV's `BW @ 100fps`).
pub fn gb_per_second(bytes_per_frame: f64, fps: f64) -> f64 {
    bytes_per_second(bytes_per_frame, fps) / GB
}

/// Formats a byte count with an adaptive unit (`B`, `KB`, `MB`, `GB`).
///
/// ```
/// assert_eq!(gwc_stats::bandwidth::format_bytes(2.5 * 1024.0 * 1024.0), "2.50 MB");
/// ```
pub fn format_bytes(bytes: f64) -> String {
    let abs = bytes.abs();
    if abs >= GB {
        format!("{:.2} GB", bytes / GB)
    } else if abs >= MB {
        format!("{:.2} MB", bytes / MB)
    } else if abs >= 1024.0 {
        format!("{:.2} KB", bytes / 1024.0)
    } else {
        format!("{bytes:.0} B")
    }
}

/// Formats a bytes-per-second rate with an adaptive unit.
pub fn format_rate(bytes_per_sec: f64) -> String {
    format!("{}/s", format_bytes(bytes_per_sec))
}

/// Theoretical bus bandwidth table of the paper's Table VI.
///
/// Returns `(name, width_bits, clock_mhz_effective, bytes_per_second)`.
/// PCI Express entries account for the 10-bits-per-byte 8b/10b encoding the
/// paper footnotes.
pub fn system_bus_table() -> Vec<(&'static str, u32, f64, f64)> {
    let agp = |mult: f64| 32.0 / 8.0 * 66.0e6 * mult;
    let pcie = |lanes: f64| 2.5e9 * lanes / 10.0;
    vec![
        ("AGP 4X", 32, 66.0 * 4.0, agp(4.0)),
        ("AGP 8X", 32, 66.0 * 8.0, agp(8.0)),
        ("PCI Express x4", 1, 2500.0, pcie(4.0)),
        ("PCI Express x8", 1, 2500.0, pcie(8.0)),
        ("PCI Express x16", 1, 2500.0, pcie(16.0)),
    ]
}

/// An exact, mergeable byte-traffic accumulator.
///
/// Counts are integral so that sharded accumulation is bit-identical to
/// single-stream accumulation under any merge order — the invariant the
/// parallel fragment pipeline's per-worker shards rely on. Conversion to
/// floating-point rates happens only at presentation time.
///
/// ```
/// use gwc_stats::BandwidthCounter;
///
/// let mut a = BandwidthCounter::new();
/// a.record(256);
/// let mut b = BandwidthCounter::new();
/// b.record(64);
/// a.merge(&b);
/// assert_eq!(a.bytes(), 320);
/// assert_eq!(a.transactions(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BandwidthCounter {
    bytes: u64,
    transactions: u64,
}

impl BandwidthCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        BandwidthCounter::default()
    }

    /// Records one transaction of `bytes` bytes. Zero-byte transactions are
    /// ignored (they move no data and occupy no bus slot).
    pub fn record(&mut self, bytes: u64) {
        if bytes > 0 {
            self.bytes += bytes;
            self.transactions += 1;
        }
    }

    /// Adds another counter's traffic into this one (associative and
    /// commutative).
    pub fn merge(&mut self, other: &BandwidthCounter) {
        self.bytes += other.bytes;
        self.transactions += other.transactions;
    }

    /// Total bytes moved.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of non-empty transactions recorded.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Mean transaction size in bytes; `0.0` when empty.
    pub fn mean_transaction_bytes(&self) -> f64 {
        if self.transactions == 0 {
            0.0
        } else {
            self.bytes as f64 / self.transactions as f64
        }
    }

    /// Traffic as MB/s treating the accumulated bytes as one frame at `fps`.
    pub fn mb_per_second(&self, fps: f64) -> f64 {
        mb_per_second(self.bytes as f64, fps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mb_per_second_at_100fps() {
        // 1 MiB per frame at 100 fps = 100 MiB/s.
        assert!((mb_per_second(MB, 100.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn format_units() {
        assert_eq!(format_bytes(512.0), "512 B");
        assert_eq!(format_bytes(2048.0), "2.00 KB");
        assert_eq!(format_bytes(3.0 * GB), "3.00 GB");
        assert_eq!(format_rate(MB), "1.00 MB/s");
    }

    #[test]
    fn counter_merge_is_exact() {
        let mut shard_a = BandwidthCounter::new();
        let mut shard_b = BandwidthCounter::new();
        let mut serial = BandwidthCounter::new();
        for (i, bytes) in [256u64, 64, 0, 192, 256, 0, 64].iter().enumerate() {
            if i % 2 == 0 { shard_a.record(*bytes) } else { shard_b.record(*bytes) }
            serial.record(*bytes);
        }
        shard_a.merge(&shard_b);
        assert_eq!(shard_a, serial);
        assert_eq!(serial.transactions(), 5);
        assert!((serial.mean_transaction_bytes() - 832.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn bus_table_matches_paper() {
        let t = system_bus_table();
        let by_name = |n: &str| t.iter().find(|e| e.0 == n).unwrap().3;
        // AGP 4X ≈ 1.056 GB/s (decimal).
        assert!((by_name("AGP 4X") - 1.056e9).abs() < 1e6);
        assert!((by_name("AGP 8X") - 2.112e9).abs() < 1e6);
        // PCIe x16 = 4 GB/s after 8b/10b.
        assert!((by_name("PCI Express x16") - 4.0e9).abs() < 1e6);
    }
}
