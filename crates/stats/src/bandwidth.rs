//! Byte-count → bandwidth conversions.
//!
//! The paper reports index and memory traffic as `MB/s` or `GB/s` at an
//! assumed frame rate (`BW @ 100fps` in Tables III and XV). These helpers
//! centralize those conversions and their display formatting.

/// Bytes in a megabyte (the paper uses decimal-ish MB for bandwidth; we use
/// binary MiB consistently, which only shifts absolute numbers by ~5%).
pub const MB: f64 = 1024.0 * 1024.0;

/// Bytes in a gigabyte.
pub const GB: f64 = 1024.0 * MB;

/// Converts bytes-per-frame into bytes-per-second at `fps`.
///
/// ```
/// let bps = gwc_stats::bandwidth::bytes_per_second(1_000_000.0, 100.0);
/// assert_eq!(bps, 100_000_000.0);
/// ```
pub fn bytes_per_second(bytes_per_frame: f64, fps: f64) -> f64 {
    bytes_per_frame * fps
}

/// Converts bytes-per-frame into MB/s at `fps` (Table III's `BW @ 100fps`).
pub fn mb_per_second(bytes_per_frame: f64, fps: f64) -> f64 {
    bytes_per_second(bytes_per_frame, fps) / MB
}

/// Converts bytes-per-frame into GB/s at `fps` (Table XV's `BW @ 100fps`).
pub fn gb_per_second(bytes_per_frame: f64, fps: f64) -> f64 {
    bytes_per_second(bytes_per_frame, fps) / GB
}

/// Formats a byte count with an adaptive unit (`B`, `KB`, `MB`, `GB`).
///
/// ```
/// assert_eq!(gwc_stats::bandwidth::format_bytes(2.5 * 1024.0 * 1024.0), "2.50 MB");
/// ```
pub fn format_bytes(bytes: f64) -> String {
    let abs = bytes.abs();
    if abs >= GB {
        format!("{:.2} GB", bytes / GB)
    } else if abs >= MB {
        format!("{:.2} MB", bytes / MB)
    } else if abs >= 1024.0 {
        format!("{:.2} KB", bytes / 1024.0)
    } else {
        format!("{bytes:.0} B")
    }
}

/// Formats a bytes-per-second rate with an adaptive unit.
pub fn format_rate(bytes_per_sec: f64) -> String {
    format!("{}/s", format_bytes(bytes_per_sec))
}

/// Theoretical bus bandwidth table of the paper's Table VI.
///
/// Returns `(name, width_bits, clock_mhz_effective, bytes_per_second)`.
/// PCI Express entries account for the 10-bits-per-byte 8b/10b encoding the
/// paper footnotes.
pub fn system_bus_table() -> Vec<(&'static str, u32, f64, f64)> {
    let agp = |mult: f64| 32.0 / 8.0 * 66.0e6 * mult;
    let pcie = |lanes: f64| 2.5e9 * lanes / 10.0;
    vec![
        ("AGP 4X", 32, 66.0 * 4.0, agp(4.0)),
        ("AGP 8X", 32, 66.0 * 8.0, agp(8.0)),
        ("PCI Express x4", 1, 2500.0, pcie(4.0)),
        ("PCI Express x8", 1, 2500.0, pcie(8.0)),
        ("PCI Express x16", 1, 2500.0, pcie(16.0)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mb_per_second_at_100fps() {
        // 1 MiB per frame at 100 fps = 100 MiB/s.
        assert!((mb_per_second(MB, 100.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn format_units() {
        assert_eq!(format_bytes(512.0), "512 B");
        assert_eq!(format_bytes(2048.0), "2.00 KB");
        assert_eq!(format_bytes(3.0 * GB), "3.00 GB");
        assert_eq!(format_rate(MB), "1.00 MB/s");
    }

    #[test]
    fn bus_table_matches_paper() {
        let t = system_bus_table();
        let by_name = |n: &str| t.iter().find(|e| e.0 == n).unwrap().3;
        // AGP 4X ≈ 1.056 GB/s (decimal).
        assert!((by_name("AGP 4X") - 1.056e9).abs() < 1e6);
        assert!((by_name("AGP 8X") - 2.112e9).abs() < 1e6);
        // PCIe x16 = 4 GB/s after 8b/10b.
        assert!((by_name("PCI Express x16") - 4.0e9).abs() < 1e6);
    }
}
