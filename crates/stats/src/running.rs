//! Streaming summary statistics.

use serde::{Deserialize, Serialize};

/// A streaming accumulator of count, sum, mean, min and max.
///
/// ```
/// use gwc_stats::RunningStat;
///
/// let mut s = RunningStat::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RunningStat {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl RunningStat {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStat { count: 0, sum: 0.0, sum_sq: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.sum_sq += x * x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &RunningStat) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population variance; `0.0` when empty.
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let m = self.mean();
        (self.sum_sq / self.count as f64 - m * m).max(0.0)
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl Extend<f64> for RunningStat {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for RunningStat {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = RunningStat::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stat_is_sane() {
        let s = RunningStat::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn mean_min_max() {
        let s: RunningStat = [4.0, 1.0, 7.0, 0.0].into_iter().collect();
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 7.0);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        let s: RunningStat = std::iter::repeat_n(5.0, 100).collect();
        assert!(s.variance() < 1e-9);
    }

    #[test]
    fn variance_known_value() {
        let s: RunningStat = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
        assert!((s.variance() - 4.0).abs() < 1e-9);
        assert!((s.std_dev() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_combined() {
        let mut a: RunningStat = [1.0, 2.0, 3.0].into_iter().collect();
        let b: RunningStat = [10.0, 20.0].into_iter().collect();
        a.merge(&b);
        let c: RunningStat = [1.0, 2.0, 3.0, 10.0, 20.0].into_iter().collect();
        assert_eq!(a.count(), c.count());
        assert!((a.mean() - c.mean()).abs() < 1e-12);
        assert_eq!(a.min(), c.min());
        assert_eq!(a.max(), c.max());
    }
}
