//! Per-chunk geometry counter shards.
//!
//! The parallel geometry front-end splits a draw's vertex shading and
//! triangle setup into fixed-size chunks and counts work per chunk. The
//! shards are reduced in fixed chunk order, so the only algebra the
//! pipeline needs from them is an exact, associative, commutative merge
//! with [`GeomShard::default`] as the identity — the same contract
//! [`crate::BandwidthCounter`] honors for memory traffic. Everything is
//! an integral count; no chunk size or thread count can perturb a sum.

use serde::{Deserialize, Serialize};

/// Applies a macro to every counter field of [`GeomShard`].
///
/// Single authoritative field list: merge, totals and tests all expand
/// from it, so adding a counter cannot silently miss the merge law.
#[macro_export]
macro_rules! with_geom_fields {
    ($m:ident) => {
        $m!(
            indices,
            vcache_hits,
            fetched_vertices,
            shaded_vertices,
            vs_instructions,
            vertex_bytes,
            assembled,
            clipped,
            culled,
            setup
        );
    };
}

macro_rules! define_shard {
    ($($field:ident),+ $(,)?) => {
        /// Exact geometry-stage counters for one chunk of a draw call.
        ///
        /// `indices`/`vcache_hits` come from the serial post-transform
        /// cache walk, `fetched_*`/`shaded_*`/`vs_instructions`/
        /// `vertex_bytes` from the chunked vertex-shade phase, and
        /// `assembled`/`clipped`/`culled`/`setup` from the chunked
        /// clip/cull/triangle-setup phase.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
        pub struct GeomShard {
            $(
                #[allow(missing_docs)]
                pub $field: u64,
            )+
        }

        impl GeomShard {
            /// Adds another shard's counts into this one. Associative and
            /// commutative with `GeomShard::default()` as identity, so a
            /// fixed-order chunk reduction is bit-identical to a serial
            /// accumulation regardless of how work was chunked.
            pub fn merge(&mut self, other: &GeomShard) {
                $(self.$field += other.$field;)+
            }

            /// Sum of every counter — a cheap "did any work happen" probe.
            pub fn total(&self) -> u64 {
                0 $(+ self.$field)+
            }
        }
    };
}

with_geom_fields!(define_shard);

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seed: u64) -> GeomShard {
        let mut s = GeomShard::default();
        let mut x = seed;
        macro_rules! fill {
            ($($field:ident),+ $(,)?) => {
                $(
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    s.$field = x >> 33;
                )+
            };
        }
        with_geom_fields!(fill);
        let _ = x;
        s
    }

    #[test]
    fn identity_and_associativity() {
        let (a, b, c) = (sample(1), sample(2), sample(3));

        let mut id = GeomShard::default();
        id.merge(&a);
        assert_eq!(id, a);

        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right);
    }

    #[test]
    fn chunk_order_is_irrelevant() {
        let shards: Vec<GeomShard> = (0..7).map(sample).collect();
        let mut fwd = GeomShard::default();
        for s in &shards {
            fwd.merge(s);
        }
        let mut rev = GeomShard::default();
        for s in shards.iter().rev() {
            rev.merge(s);
        }
        assert_eq!(fwd, rev);
        assert!(fwd.total() > 0);
    }
}
