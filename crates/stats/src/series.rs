//! Per-frame time series (the raw material of the paper's figures).

use serde::{Deserialize, Serialize};

use crate::RunningStat;

/// A named per-frame series of values.
///
/// The paper plots several metrics frame by frame (batches per frame, index
/// bandwidth per frame, vertex cache hit rate, …). A `TimeSeries` collects
/// one value per frame and offers the summary statistics the tables report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries { name: name.into(), values: Vec::new() }
    }

    /// The display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends one frame's value.
    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    /// Number of frames recorded.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no frames have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The recorded values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mean over all frames; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.summary().mean()
    }

    /// Summary statistics over all frames.
    pub fn summary(&self) -> RunningStat {
        self.values.iter().copied().collect()
    }

    /// Mean over the half-open frame range `[from, to)`, clamped to the
    /// series length. Used for Oblivion's two-region vertex shader average.
    pub fn mean_range(&self, from: usize, to: usize) -> f64 {
        let to = to.min(self.values.len());
        if from >= to {
            return 0.0;
        }
        self.values[from..to].iter().sum::<f64>() / (to - from) as f64
    }

    /// Down-samples to at most `buckets` points by averaging equal spans —
    /// used to render long series as compact charts.
    pub fn bucketed(&self, buckets: usize) -> Vec<f64> {
        if self.values.is_empty() || buckets == 0 {
            return Vec::new();
        }
        if self.values.len() <= buckets {
            return self.values.clone();
        }
        let n = self.values.len();
        (0..buckets)
            .map(|b| {
                let lo = b * n / buckets;
                let hi = ((b + 1) * n / buckets).max(lo + 1);
                self.values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
            })
            .collect()
    }

    /// Emits `frame,value` CSV lines (with a header).
    pub fn to_csv(&self) -> String {
        let mut out = format!("frame,{}\n", self.name);
        for (i, v) in self.values.iter().enumerate() {
            out.push_str(&format!("{},{v}\n", i + 1));
        }
        out
    }
}

impl Extend<f64> for TimeSeries {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        self.values.extend(iter);
    }
}

/// Renders one or more series as a fixed-size ASCII chart (the `repro`
/// binary's stand-in for the paper's figures).
///
/// Each series is drawn with its own glyph; values are linearly mapped into
/// `height` rows between the global min and max. When `log_scale` is set,
/// values are transformed by `log10(max(v, 1))` first (Figure 3 in the paper
/// uses a log axis).
pub fn ascii_chart(series: &[&TimeSeries], width: usize, height: usize, log_scale: bool) -> String {
    const GLYPHS: [char; 6] = ['*', '+', 'o', 'x', '#', '@'];
    let width = width.max(8);
    let height = height.max(2);
    let transformed: Vec<(String, Vec<f64>)> = series
        .iter()
        .map(|s| {
            let vals = s
                .bucketed(width)
                .into_iter()
                .map(|v| if log_scale { v.max(1.0).log10() } else { v })
                .collect();
            (s.name().to_owned(), vals)
        })
        .collect();
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, vals) in &transformed {
        for &v in vals {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        return String::from("(empty chart)\n");
    }
    if hi - lo < 1e-12 {
        hi = lo + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, vals)) in transformed.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (x, &v) in vals.iter().enumerate() {
            let y = ((v - lo) / (hi - lo) * (height - 1) as f64).round() as usize;
            let row = height - 1 - y.min(height - 1);
            grid[row][x] = glyph;
        }
    }
    let mut out = String::new();
    let label = |v: f64| {
        if log_scale {
            format!("{:>10.1}", 10f64.powf(v))
        } else {
            format!("{v:>10.1}")
        }
    };
    for (r, row) in grid.iter().enumerate() {
        let axis_val = hi - (hi - lo) * r as f64 / (height - 1) as f64;
        out.push_str(&label(axis_val));
        out.push_str(" |");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>10} +{}\n", "", "-".repeat(width)));
    let mut legend = format!("{:>12}", "");
    for (si, (name, _)) in transformed.iter().enumerate() {
        legend.push_str(&format!("[{}] {}  ", GLYPHS[si % GLYPHS.len()], name));
    }
    out.push_str(&legend);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_len() {
        let mut s = TimeSeries::new("x");
        s.extend([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.mean(), 2.5);
    }

    #[test]
    fn empty_series_mean_zero() {
        assert_eq!(TimeSeries::new("e").mean(), 0.0);
        assert!(TimeSeries::new("e").is_empty());
    }

    #[test]
    fn mean_range_clamps() {
        let mut s = TimeSeries::new("x");
        s.extend([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean_range(0, 2), 1.5);
        assert_eq!(s.mean_range(2, 100), 3.5);
        assert_eq!(s.mean_range(3, 3), 0.0);
        assert_eq!(s.mean_range(5, 2), 0.0);
    }

    #[test]
    fn bucketed_preserves_short_series() {
        let mut s = TimeSeries::new("x");
        s.extend([1.0, 2.0, 3.0]);
        assert_eq!(s.bucketed(10), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn bucketed_averages_spans() {
        let mut s = TimeSeries::new("x");
        s.extend((0..100).map(|i| i as f64));
        let b = s.bucketed(10);
        assert_eq!(b.len(), 10);
        // First bucket = mean of 0..10 = 4.5.
        assert!((b[0] - 4.5).abs() < 1e-9);
        assert!((b[9] - 94.5).abs() < 1e-9);
    }

    #[test]
    fn bucketed_total_mean_preserved() {
        let mut s = TimeSeries::new("x");
        s.extend((0..128).map(|i| (i % 13) as f64));
        let b = s.bucketed(16); // 128/16 = equal spans
        let mb = b.iter().sum::<f64>() / b.len() as f64;
        assert!((mb - s.mean()).abs() < 1e-9);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut s = TimeSeries::new("batches");
        s.extend([5.0, 6.0]);
        let csv = s.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("frame,batches"));
        assert_eq!(lines.next(), Some("1,5"));
        assert_eq!(lines.next(), Some("2,6"));
    }

    #[test]
    fn chart_renders_nonempty() {
        let mut s = TimeSeries::new("x");
        s.extend((0..50).map(|i| (i as f64).sin() * 10.0 + 20.0));
        let chart = ascii_chart(&[&s], 40, 8, false);
        assert!(chart.contains('*'));
        assert!(chart.contains("[*] x"));
        assert_eq!(chart.lines().count(), 10);
    }

    #[test]
    fn chart_handles_empty_and_constant() {
        let e = TimeSeries::new("e");
        assert!(ascii_chart(&[&e], 20, 5, false).contains("empty"));
        let mut c = TimeSeries::new("c");
        c.extend([3.0; 10]);
        let chart = ascii_chart(&[&c], 20, 5, false);
        assert!(chart.contains('*'));
    }

    #[test]
    fn chart_log_scale_labels_in_linear_units() {
        let mut s = TimeSeries::new("calls");
        s.extend([10.0, 100.0, 1000.0, 10000.0]);
        let chart = ascii_chart(&[&s], 20, 5, true);
        assert!(chart.contains("10000"), "chart was:\n{chart}");
    }
}
