//! Fixed-width-bin histograms.

use serde::{Deserialize, Serialize};

/// A histogram with `bins` equal-width buckets spanning `[lo, hi)`, plus
/// underflow/overflow buckets.
///
/// ```
/// use gwc_stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 10);
/// for x in [0.5, 1.5, 1.7, 9.9, 12.0] {
///     h.record(x);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "invalid histogram range [{lo}, {hi})");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram { lo, hi, counts: vec![0; bins], underflow: 0, overflow: 0, total: 0 }
    }

    /// Records a sample.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let bin = ((x - self.lo) / (self.hi - self.lo) * self.counts.len() as f64) as usize;
            let last = self.counts.len() - 1;
            self.counts[bin.min(last)] += 1;
        }
    }

    /// Total number of recorded samples (including under/overflow).
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the top of the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.counts
    }

    /// Lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        self.lo + (self.hi - self.lo) * i as f64 / self.counts.len() as f64
    }

    /// Merges another histogram into this one bin by bin.
    ///
    /// Merging is associative and commutative: sharded workers can each
    /// record into a private histogram and any reduction order yields the
    /// exact counts a single-stream accumulation would have produced.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different range or bin geometry.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len(),
            "histogram geometry mismatch: [{}, {})x{} vs [{}, {})x{}",
            self.lo,
            self.hi,
            self.counts.len(),
            other.lo,
            other.hi,
            other.counts.len()
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
    }

    /// Approximate quantile `q in [0,1]` using linear interpolation within
    /// the containing bin; returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.total as f64;
        let mut acc = self.underflow as f64;
        if acc >= target && self.underflow > 0 {
            return Some(self.lo);
        }
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        for (i, &c) in self.counts.iter().enumerate() {
            if acc + c as f64 >= target {
                let inside = if c == 0 { 0.0 } else { (target - acc) / c as f64 };
                return Some(self.bin_lo(i) + inside * w);
            }
            acc += c as f64;
        }
        Some(self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.0);
        h.record(0.99);
        h.record(5.5);
        h.record(9.999);
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.bins()[5], 1);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-0.1);
        h.record(1.0);
        h.record(100.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn quantile_uniform() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 50.0).abs() < 2.0, "median = {median}");
        assert!(h.quantile(0.0).unwrap() <= 1.0);
        assert!(h.quantile(1.0).unwrap() >= 99.0);
    }

    #[test]
    fn quantile_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 2);
        assert!(h.quantile(0.5).is_none());
    }

    #[test]
    #[should_panic(expected = "invalid histogram range")]
    fn bad_range_panics() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn merge_matches_single_stream() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        let mut all = Histogram::new(0.0, 10.0, 5);
        for (i, x) in [-1.0, 0.5, 3.3, 9.9, 12.0, 4.4, 7.7].iter().enumerate() {
            if i % 2 == 0 { a.record(*x) } else { b.record(*x) }
            all.record(*x);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn merge_geometry_mismatch_panics() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let b = Histogram::new(0.0, 10.0, 6);
        a.merge(&b);
    }

    #[test]
    fn bin_lo_edges() {
        let h = Histogram::new(10.0, 20.0, 5);
        assert_eq!(h.bin_lo(0), 10.0);
        assert_eq!(h.bin_lo(4), 18.0);
    }
}
