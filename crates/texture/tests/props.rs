//! Property tests for the texture substrate.

use gwc_math::Vec4;
use gwc_mem::AddressSpace;
use gwc_texture::{dxt, FilterMode, Image, NoopTracker, SampleStats, SamplerState, TexFormat,
                  Texture, WrapMode};
use proptest::prelude::*;

fn texel() -> impl Strategy<Value = [u8; 4]> {
    (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(r, g, b, a)| [r, g, b, a])
}

proptest! {
    /// DXT1 color decode error is bounded: 2-bit palette over the block's
    /// own color range plus RGB565 quantization.
    #[test]
    fn dxt1_error_bounded(texels in prop::collection::vec(texel(), 16)) {
        let enc = dxt::encode_block(&texels, TexFormat::Dxt1);
        let dec = dxt::decode_block(&enc, TexFormat::Dxt1);
        // The palette endpoints are block texels, so every decoded channel
        // lies within the block's own channel range plus 565 quantization.
        for ch in 0..3 {
            let lo = texels.iter().map(|t| t[ch]).min().unwrap() as i32;
            let hi = texels.iter().map(|t| t[ch]).max().unwrap() as i32;
            let bound = (hi - lo) + 24;
            for (orig, got) in texels.iter().zip(dec.iter()) {
                let err = (orig[ch] as i32 - got[ch] as i32).abs();
                prop_assert!(err <= bound, "channel {ch}: err {err} > bound {bound}");
            }
        }
    }

    /// DXT5 alpha decode error is within one palette step of the range.
    #[test]
    fn dxt5_alpha_error_bounded(alphas in prop::collection::vec(any::<u8>(), 16)) {
        let a: [u8; 16] = alphas.try_into().unwrap();
        let dec = dxt::decode_alpha_dxt5(&dxt::encode_alpha_dxt5(&a));
        let lo = *a.iter().min().unwrap() as i32;
        let hi = *a.iter().max().unwrap() as i32;
        let step = ((hi - lo) / 7).max(1) + 1;
        for (orig, got) in a.iter().zip(dec.iter()) {
            prop_assert!((*orig as i32 - *got as i32).abs() <= step,
                "{orig} vs {got} (step {step})");
        }
    }

    /// Sampling a solid-color RGBA8 texture returns that color for every
    /// filter mode, wrap mode and coordinate (filtering is an average).
    #[test]
    fn filtering_preserves_constants(
        r in any::<u8>(), g in any::<u8>(), b in any::<u8>(),
        u in -3.0f32..3.0, v in -3.0f32..3.0,
        filter_idx in 0usize..4,
        wrap_idx in 0usize..3,
        step in 0.001f32..0.3,
    ) {
        let filters = [
            FilterMode::Nearest,
            FilterMode::Bilinear,
            FilterMode::Trilinear,
            FilterMode::Anisotropic(16),
        ];
        let wraps = [WrapMode::Repeat, WrapMode::Clamp, WrapMode::Mirror];
        let mut vram = AddressSpace::new();
        let tex = Texture::from_image(&Image::solid(32, 32, [r, g, b, 255]), TexFormat::Rgba8, true, &mut vram);
        let sampler = SamplerState { wrap: wraps[wrap_idx], filter: filters[filter_idx], lod_bias: 0.0 };
        let coords = [
            Vec4::new(u, v, 0.0, 1.0),
            Vec4::new(u + step, v, 0.0, 1.0),
            Vec4::new(u, v + step, 0.0, 1.0),
            Vec4::new(u + step, v + step, 0.0, 1.0),
        ];
        let mut stats = SampleStats::default();
        let out = sampler.sample_quad(&tex, &coords, false, 0.0, [true; 4], &mut NoopTracker, &mut stats);
        let expect = Vec4::new(r as f32 / 255.0, g as f32 / 255.0, b as f32 / 255.0, 1.0);
        for (lane, &got) in out.iter().enumerate() {
            let d = got - expect;
            prop_assert!(d.dot(d) < 1e-4, "lane {lane}: {got:?} vs {expect:?}");
        }
        prop_assert_eq!(stats.requests, 4);
    }

    /// Bilinear cost accounting: nearest/bilinear = 1, trilinear ≤ 2,
    /// anisotropic ≤ 2×N per request, and ≥ 1 always.
    #[test]
    fn bilinear_cost_bounds(
        max_aniso in 1u8..16,
        ratio in 1.0f32..40.0,
        base in 0.0f32..1.0,
    ) {
        let mut vram = AddressSpace::new();
        let tex = Texture::from_image(&Image::noise(128, 128, 5), TexFormat::Dxt1, true, &mut vram);
        let sampler = SamplerState {
            wrap: WrapMode::Repeat,
            filter: FilterMode::Anisotropic(max_aniso),
            lod_bias: 0.0,
        };
        let du = ratio * 2.0 / 128.0;
        let dv = 2.0 / 128.0;
        let coords = [
            Vec4::new(base, base, 0.0, 1.0),
            Vec4::new(base + du, base, 0.0, 1.0),
            Vec4::new(base, base + dv, 0.0, 1.0),
            Vec4::new(base + du, base + dv, 0.0, 1.0),
        ];
        let mut stats = SampleStats::default();
        sampler.sample_quad(&tex, &coords, false, 0.0, [true; 4], &mut NoopTracker, &mut stats);
        let per_request = stats.bilinear_samples as f64 / stats.requests as f64;
        prop_assert!(per_request >= 1.0);
        prop_assert!(per_request <= 2.0 * max_aniso as f64,
            "cost {per_request} exceeds 2x{max_aniso}");
    }

    /// Texel addresses stay within each level's allocation and dedupe
    /// correctly across mips.
    #[test]
    fn texel_addresses_consistent(w in 1u32..64, h in 1u32..64) {
        let mut vram = AddressSpace::new();
        let tex = Texture::from_image(&Image::solid(w, h, [1, 2, 3, 4]), TexFormat::Dxt5, true, &mut vram);
        let mut seen = std::collections::HashSet::new();
        for level in 0..tex.mip_count() {
            let (lw, lh) = tex.level_dims(level);
            let a = tex.texel_address(level, 0, 0);
            let b = tex.texel_address(level, lw - 1, lh - 1);
            prop_assert!(b.uncompressed >= a.uncompressed);
            prop_assert!(seen.insert(a.uncompressed), "level base reused");
        }
    }
}
