//! Texture filtering: bilinear, trilinear and anisotropic sampling with
//! bilinear-throughput accounting.

use gwc_math::{Vec2, Vec4};
use serde::{Deserialize, Serialize};

use crate::{TexelAddress, Texture};

/// Texture coordinate wrap modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum WrapMode {
    /// Repeat (tile) the texture.
    #[default]
    Repeat,
    /// Clamp to the edge texel.
    Clamp,
    /// Mirror every other repetition.
    Mirror,
}

impl WrapMode {
    /// Maps an unbounded texel index into `[0, size)`.
    #[inline]
    fn apply(self, i: i64, size: u32) -> u32 {
        let n = size as i64;
        match self {
            WrapMode::Repeat => (i.rem_euclid(n)) as u32,
            WrapMode::Clamp => i.clamp(0, n - 1) as u32,
            WrapMode::Mirror => {
                let period = 2 * n;
                let m = i.rem_euclid(period);
                if m < n {
                    m as u32
                } else {
                    (period - 1 - m) as u32
                }
            }
        }
    }
}

/// Filtering algorithm, in increasing cost order.
///
/// Table XIII of the paper hinges on the *dynamic* cost of these filters:
/// bilinear = 1 sample/cycle, trilinear = 2, anisotropic up to `2 × N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterMode {
    /// Nearest texel of the nearest mip level.
    Nearest,
    /// Bilinear within the nearest mip level.
    Bilinear,
    /// Bilinear on two mip levels, interpolated.
    Trilinear,
    /// Anisotropic with up to the given number of trilinear probes along
    /// the major axis of the pixel footprint (2–16 in practice; the games
    /// in Table I use 16×).
    Anisotropic(u8),
}

/// Sampler configuration bound alongside a texture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplerState {
    /// Wrap mode for both axes.
    pub wrap: WrapMode,
    /// Filter algorithm.
    pub filter: FilterMode,
    /// Constant LOD bias added to the computed level of detail.
    pub lod_bias: f32,
}

impl Default for SamplerState {
    fn default() -> Self {
        SamplerState { wrap: WrapMode::Repeat, filter: FilterMode::Bilinear, lod_bias: 0.0 }
    }
}

/// Receives every texel fetch the filter performs, so the pipeline can
/// drive its L0/L1 texture caches and count memory traffic.
pub trait TexelTracker {
    /// Called once per texel fetched (4 per bilinear sample).
    fn fetch(&mut self, address: TexelAddress);
}

/// A tracker that ignores all fetches (API-level runs, tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NoopTracker;

impl TexelTracker for NoopTracker {
    fn fetch(&mut self, _address: TexelAddress) {}
}

/// Aggregate filtering statistics (feeds Table XIII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SampleStats {
    /// Texture requests (one per live fragment per texture instruction).
    pub requests: u64,
    /// Bilinear samples consumed by those requests.
    pub bilinear_samples: u64,
}

impl SampleStats {
    /// Average bilinear samples per request (Table XIII column 1);
    /// `0.0` when there were no requests.
    pub fn bilinears_per_request(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.bilinear_samples as f64 / self.requests as f64
        }
    }

    /// Merges another stats record.
    pub fn merge(&mut self, other: &SampleStats) {
        self.requests += other.requests;
        self.bilinear_samples += other.bilinear_samples;
    }
}

impl SamplerState {
    /// Samples a texture for one fragment quad.
    ///
    /// `coords` are the four lanes' texture coordinates (quad order);
    /// derivatives for LOD are taken across the quad, exactly as the
    /// hardware's 2×2 working unit does. `active` marks live lanes: only
    /// they fetch texels and count toward `stats`.
    ///
    /// Returns the filtered color per lane (inactive lanes return zero).
    #[allow(clippy::too_many_arguments)]
    pub fn sample_quad<T: TexelTracker>(
        &self,
        texture: &Texture,
        coords: &[Vec4; 4],
        projective: bool,
        lod_bias: f32,
        active: [bool; 4],
        tracker: &mut T,
        stats: &mut SampleStats,
    ) -> [Vec4; 4] {
        let uv: [Vec2; 4] = std::array::from_fn(|i| {
            let c = coords[i];
            if projective && c.w != 0.0 {
                Vec2::new(c.x / c.w, c.y / c.w)
            } else {
                Vec2::new(c.x, c.y)
            }
        });
        let (w0, h0) = texture.level_dims(0);
        let scale = Vec2::new(w0 as f32, h0 as f32);
        // Footprint derivatives across the quad, in level-0 texel units.
        let duv_dx = Vec2::new((uv[1].x - uv[0].x) * scale.x, (uv[1].y - uv[0].y) * scale.y);
        let duv_dy = Vec2::new((uv[2].x - uv[0].x) * scale.x, (uv[2].y - uv[0].y) * scale.y);
        let rho_x = duv_dx.length();
        let rho_y = duv_dy.length();

        let max_level = (texture.mip_count() - 1) as f32;
        let mut out = [Vec4::ZERO; 4];
        match self.filter {
            FilterMode::Nearest => {
                let lambda = rho_x.max(rho_y).max(1e-6).log2() + self.lod_bias + lod_bias;
                let level = lambda.round().clamp(0.0, max_level) as usize;
                for lane in 0..4 {
                    if !active[lane] {
                        continue;
                    }
                    out[lane] = self.sample_nearest(texture, level, uv[lane], tracker);
                    stats.requests += 1;
                    stats.bilinear_samples += 1;
                }
            }
            FilterMode::Bilinear => {
                let lambda = rho_x.max(rho_y).max(1e-6).log2() + self.lod_bias + lod_bias;
                let level = lambda.round().clamp(0.0, max_level) as usize;
                for lane in 0..4 {
                    if !active[lane] {
                        continue;
                    }
                    out[lane] = self.sample_bilinear(texture, level, uv[lane], tracker);
                    stats.requests += 1;
                    stats.bilinear_samples += 1;
                }
            }
            FilterMode::Trilinear => {
                let lambda = (rho_x.max(rho_y).max(1e-6).log2() + self.lod_bias + lod_bias)
                    .clamp(0.0, max_level);
                for lane in 0..4 {
                    if !active[lane] {
                        continue;
                    }
                    let (color, bilinears) = self.sample_trilinear(texture, lambda, uv[lane], tracker);
                    out[lane] = color;
                    stats.requests += 1;
                    stats.bilinear_samples += bilinears;
                }
            }
            FilterMode::Anisotropic(max_aniso) => {
                let max_aniso = max_aniso.max(1) as f32;
                let (p_max, p_min, major) = if rho_x >= rho_y {
                    (rho_x, rho_y, duv_dx)
                } else {
                    (rho_y, rho_x, duv_dy)
                };
                let p_min = p_min.max(1e-6);
                let p_max = p_max.max(1e-6);
                let n = (p_max / p_min).ceil().clamp(1.0, max_aniso) as u32;
                let lambda = ((p_max / n as f32).max(1e-6).log2() + self.lod_bias + lod_bias)
                    .clamp(0.0, max_level);
                // Probe offsets along the major axis, back in UV space.
                let major_uv = Vec2::new(major.x / scale.x, major.y / scale.y);
                for lane in 0..4 {
                    if !active[lane] {
                        continue;
                    }
                    let mut acc = Vec4::ZERO;
                    let mut bilinears = 0u64;
                    for i in 0..n {
                        let t = (2.0 * i as f32 + 1.0) / (2.0 * n as f32) - 0.5;
                        let p = Vec2::new(uv[lane].x + major_uv.x * t, uv[lane].y + major_uv.y * t);
                        let (c, b) = self.sample_trilinear(texture, lambda, p, tracker);
                        acc += c;
                        bilinears += b;
                    }
                    out[lane] = acc / n as f32;
                    stats.requests += 1;
                    stats.bilinear_samples += bilinears;
                }
            }
        }
        out
    }

    fn sample_nearest<T: TexelTracker>(
        &self,
        texture: &Texture,
        level: usize,
        uv: Vec2,
        tracker: &mut T,
    ) -> Vec4 {
        let (w, h) = texture.level_dims(level);
        let x = self.wrap.apply((uv.x * w as f32).floor() as i64, w);
        let y = self.wrap.apply((uv.y * h as f32).floor() as i64, h);
        tracker.fetch(texture.texel_address(level, x, y));
        texture.texel(level, x, y)
    }

    fn sample_bilinear<T: TexelTracker>(
        &self,
        texture: &Texture,
        level: usize,
        uv: Vec2,
        tracker: &mut T,
    ) -> Vec4 {
        let (w, h) = texture.level_dims(level);
        let fx = uv.x * w as f32 - 0.5;
        let fy = uv.y * h as f32 - 0.5;
        let x0 = fx.floor();
        let y0 = fy.floor();
        let tx = fx - x0;
        let ty = fy - y0;
        let xi = [x0 as i64, x0 as i64 + 1];
        let yi = [y0 as i64, y0 as i64 + 1];
        let mut acc = Vec4::ZERO;
        for (wy, &yy) in [1.0 - ty, ty].iter().zip(yi.iter()) {
            for (wx, &xx) in [1.0 - tx, tx].iter().zip(xi.iter()) {
                let x = self.wrap.apply(xx, w);
                let y = self.wrap.apply(yy, h);
                tracker.fetch(texture.texel_address(level, x, y));
                acc += texture.texel(level, x, y) * (wx * wy);
            }
        }
        acc
    }

    /// Returns the filtered color and the number of bilinear samples spent
    /// (2 when two levels are blended, 1 at the LOD clamp boundaries).
    fn sample_trilinear<T: TexelTracker>(
        &self,
        texture: &Texture,
        lambda: f32,
        uv: Vec2,
        tracker: &mut T,
    ) -> (Vec4, u64) {
        let l0 = lambda.floor() as usize;
        let frac = lambda - lambda.floor();
        let max_level = texture.mip_count() - 1;
        if frac <= f32::EPSILON || l0 >= max_level {
            (self.sample_bilinear(texture, l0.min(max_level), uv, tracker), 1)
        } else {
            let a = self.sample_bilinear(texture, l0, uv, tracker);
            let b = self.sample_bilinear(texture, l0 + 1, uv, tracker);
            (a.lerp(b, frac), 2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Image, TexFormat};
    use gwc_mem::AddressSpace;

    fn tex(img: &Image, mips: bool) -> Texture {
        Texture::from_image(img, TexFormat::Rgba8, mips, &mut AddressSpace::new())
    }

    /// Quad coords for a pixel footprint of `step` texture-space units.
    fn quad_at(u: f32, v: f32, step: f32) -> [Vec4; 4] {
        [
            Vec4::new(u, v, 0.0, 1.0),
            Vec4::new(u + step, v, 0.0, 1.0),
            Vec4::new(u, v + step, 0.0, 1.0),
            Vec4::new(u + step, v + step, 0.0, 1.0),
        ]
    }

    #[test]
    fn wrap_modes() {
        assert_eq!(WrapMode::Repeat.apply(-1, 8), 7);
        assert_eq!(WrapMode::Repeat.apply(8, 8), 0);
        assert_eq!(WrapMode::Clamp.apply(-5, 8), 0);
        assert_eq!(WrapMode::Clamp.apply(100, 8), 7);
        assert_eq!(WrapMode::Mirror.apply(8, 8), 7);
        assert_eq!(WrapMode::Mirror.apply(-1, 8), 0);
        assert_eq!(WrapMode::Mirror.apply(15, 8), 0);
    }

    #[test]
    fn bilinear_blends_texels() {
        // 2x1 image, black and white: sampling at the midpoint gives grey.
        let mut img = Image::solid(2, 1, [0, 0, 0, 255]);
        img.set(1, 0, [255, 255, 255, 255]);
        let t = tex(&img, false);
        let s = SamplerState { filter: FilterMode::Bilinear, wrap: WrapMode::Clamp, lod_bias: 0.0 };
        let mut stats = SampleStats::default();
        // Midpoint of the two texel centers: u = 0.5.
        let out = s.sample_quad(&t, &quad_at(0.5, 0.5, 0.0), false, 0.0, [true; 4], &mut NoopTracker, &mut stats);
        assert!((out[0].x - 0.5).abs() < 0.01, "got {}", out[0].x);
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.bilinear_samples, 4);
    }

    #[test]
    fn texel_center_returns_exact_color() {
        let mut img = Image::solid(4, 4, [0, 0, 0, 255]);
        img.set(2, 1, [255, 0, 0, 255]);
        let t = tex(&img, false);
        let s = SamplerState { filter: FilterMode::Bilinear, wrap: WrapMode::Clamp, lod_bias: 0.0 };
        let mut stats = SampleStats::default();
        // Texel (2,1) center: u = 2.5/4, v = 1.5/4.
        let out = s.sample_quad(
            &t,
            &quad_at(2.5 / 4.0, 1.5 / 4.0, 0.0),
            false,
            0.0,
            [true; 4],
            &mut NoopTracker,
            &mut stats,
        );
        assert!((out[0].x - 1.0).abs() < 1e-5);
        assert!(out[0].y.abs() < 1e-5);
    }

    #[test]
    fn minification_selects_coarser_mip() {
        // Checkerboard: level 0 is high contrast, deep mips are grey.
        let img = Image::checkerboard(64, 64, 1, [255, 255, 255, 255], [0, 0, 0, 255]);
        let t = tex(&img, true);
        let s = SamplerState { filter: FilterMode::Bilinear, wrap: WrapMode::Repeat, lod_bias: 0.0 };
        let mut stats = SampleStats::default();
        // Footprint of 16 texels per pixel -> lambda = 4 -> nearly grey.
        let out = s.sample_quad(&t, &quad_at(0.25, 0.25, 16.0 / 64.0), false, 0.0, [true; 4], &mut NoopTracker, &mut stats);
        assert!((out[0].x - 0.5).abs() < 0.1, "expected grey, got {}", out[0].x);
    }

    #[test]
    fn trilinear_costs_two_bilinears_when_between_levels() {
        let img = Image::solid(64, 64, [100; 4]);
        let t = tex(&img, true);
        let s = SamplerState { filter: FilterMode::Trilinear, wrap: WrapMode::Repeat, lod_bias: 0.0 };
        let mut stats = SampleStats::default();
        // Footprint ~3 texels -> lambda ≈ 1.58: blends levels 1 and 2.
        s.sample_quad(&t, &quad_at(0.5, 0.5, 3.0 / 64.0), false, 0.0, [true; 4], &mut NoopTracker, &mut stats);
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.bilinear_samples, 8);
    }

    #[test]
    fn trilinear_at_magnification_costs_one() {
        let img = Image::solid(64, 64, [100; 4]);
        let t = tex(&img, true);
        let s = SamplerState { filter: FilterMode::Trilinear, wrap: WrapMode::Repeat, lod_bias: 0.0 };
        let mut stats = SampleStats::default();
        // Footprint under 1 texel: magnification, lambda clamps to 0.
        s.sample_quad(&t, &quad_at(0.5, 0.5, 0.25 / 64.0), false, 0.0, [true; 4], &mut NoopTracker, &mut stats);
        assert_eq!(stats.bilinear_samples, 4);
    }

    #[test]
    fn anisotropic_cost_scales_with_footprint_ratio() {
        let img = Image::solid(256, 256, [100; 4]);
        let t = tex(&img, true);
        let s = SamplerState {
            filter: FilterMode::Anisotropic(16),
            wrap: WrapMode::Repeat,
            lod_bias: 0.0,
        };
        // Anisotropic footprint: 8 texels in x, 1 in y -> 8 probes.
        let coords = [
            Vec4::new(0.5, 0.5, 0.0, 1.0),
            Vec4::new(0.5 + 8.0 / 256.0, 0.5, 0.0, 1.0),
            Vec4::new(0.5, 0.5 + 1.0 / 256.0, 0.0, 1.0),
            Vec4::new(0.5 + 8.0 / 256.0, 0.5 + 1.0 / 256.0, 0.0, 1.0),
        ];
        let mut stats = SampleStats::default();
        s.sample_quad(&t, &coords, false, 0.0, [true, false, false, false], &mut NoopTracker, &mut stats);
        assert_eq!(stats.requests, 1);
        // 8 probes; each trilinear probe costs 1-2 bilinears.
        assert!(stats.bilinear_samples >= 8 && stats.bilinear_samples <= 16,
                "got {}", stats.bilinear_samples);
    }

    #[test]
    fn anisotropic_ratio_clamped_to_max() {
        let img = Image::solid(256, 256, [100; 4]);
        let t = tex(&img, true);
        let s = SamplerState {
            filter: FilterMode::Anisotropic(4),
            wrap: WrapMode::Repeat,
            lod_bias: 0.0,
        };
        // 32:1 anisotropy but max 4 probes.
        let coords = [
            Vec4::new(0.5, 0.5, 0.0, 1.0),
            Vec4::new(0.5 + 32.0 / 256.0, 0.5, 0.0, 1.0),
            Vec4::new(0.5, 0.5 + 1.0 / 256.0, 0.0, 1.0),
            Vec4::new(0.5 + 32.0 / 256.0, 0.5 + 1.0 / 256.0, 0.0, 1.0),
        ];
        let mut stats = SampleStats::default();
        s.sample_quad(&t, &coords, false, 0.0, [true, false, false, false], &mut NoopTracker, &mut stats);
        assert!(stats.bilinear_samples <= 8, "got {}", stats.bilinear_samples);
        assert!(stats.bilinear_samples >= 4);
    }

    #[test]
    fn isotropic_footprint_single_probe() {
        let img = Image::solid(64, 64, [100; 4]);
        let t = tex(&img, true);
        let s = SamplerState {
            filter: FilterMode::Anisotropic(16),
            wrap: WrapMode::Repeat,
            lod_bias: 0.0,
        };
        let mut stats = SampleStats::default();
        s.sample_quad(&t, &quad_at(0.5, 0.5, 1.0 / 64.0), false, 0.0, [true, false, false, false], &mut NoopTracker, &mut stats);
        // Square footprint: 1 probe, 1:1 ratio.
        assert!(stats.bilinear_samples <= 2);
    }

    #[test]
    fn inactive_lanes_do_not_sample() {
        let img = Image::solid(8, 8, [100; 4]);
        let t = tex(&img, false);
        let s = SamplerState::default();
        let mut stats = SampleStats::default();
        let out = s.sample_quad(&t, &quad_at(0.5, 0.5, 0.125), false, 0.0, [false; 4], &mut NoopTracker, &mut stats);
        assert_eq!(stats.requests, 0);
        assert_eq!(out[0], Vec4::ZERO);
    }

    #[test]
    fn tracker_sees_four_fetches_per_bilinear() {
        struct Count(u64);
        impl TexelTracker for Count {
            fn fetch(&mut self, _a: TexelAddress) {
                self.0 += 1;
            }
        }
        let img = Image::solid(8, 8, [100; 4]);
        let t = tex(&img, false);
        let s = SamplerState::default();
        let mut stats = SampleStats::default();
        let mut tr = Count(0);
        s.sample_quad(&t, &quad_at(0.3, 0.3, 0.0), false, 0.0, [true, false, false, false], &mut tr, &mut stats);
        assert_eq!(tr.0, 4);
    }

    #[test]
    fn projective_divides_by_w() {
        let mut img = Image::solid(4, 4, [0, 0, 0, 255]);
        img.set(2, 1, [255, 0, 0, 255]);
        let t = tex(&img, false);
        let s = SamplerState { filter: FilterMode::Bilinear, wrap: WrapMode::Clamp, lod_bias: 0.0 };
        let mut stats = SampleStats::default();
        // coords scaled by w=2: (1.25, 0.75, _, 2) -> uv (0.625, 0.375) = texel (2,1) center.
        let c = Vec4::new(2.0 * 2.5 / 4.0, 2.0 * 1.5 / 4.0, 0.0, 2.0);
        let out = s.sample_quad(&t, &[c; 4], true, 0.0, [true; 4], &mut NoopTracker, &mut stats);
        assert!((out[0].x - 1.0).abs() < 1e-5);
    }

    #[test]
    fn stats_ratio() {
        let mut s = SampleStats { requests: 4, bilinear_samples: 18 };
        assert!((s.bilinears_per_request() - 4.5).abs() < 1e-12);
        s.merge(&SampleStats { requests: 1, bilinear_samples: 2 });
        assert_eq!(s.requests, 5);
        assert_eq!(s.bilinear_samples, 20);
        assert_eq!(SampleStats::default().bilinears_per_request(), 0.0);
    }
}
