//! GPU-resident textures with mip chains and dual addressing.

use gwc_mem::AddressSpace;
use serde::{Deserialize, Serialize};

use crate::{dxt, Image, TexFormat};

/// The two addresses of one texel.
///
/// ATTILA's texture cache hierarchy (Table XIV) keeps *uncompressed* texels
/// in L0 and *compressed* blocks in L1, so every texel is identified by an
/// address in each space. Both ranges are allocated from the simulation's
/// virtual [`AddressSpace`]; only uniqueness matters for cache tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TexelAddress {
    /// Address in decompressed-texel space (L0 cache key).
    pub uncompressed: u64,
    /// Address of the containing compressed block in GPU memory
    /// (L1 cache key and the unit of memory traffic).
    pub compressed: u64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct MipLevel {
    image: Image,
    base_uncompressed: u64,
    base_compressed: u64,
    compressed_bytes: u64,
}

/// A GPU texture: a format, a mip chain, and addresses in the simulated
/// memory.
///
/// For compressed formats the stored texels are the *decode of the encode*
/// of the source image, so sampling returns exactly the colors hardware
/// would see, compression artifacts included.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Texture {
    format: TexFormat,
    levels: Vec<MipLevel>,
}

/// Texels per side of an uncompressed-space tile. A 4×4 tile of RGBA8 is
/// exactly one 64-byte L0 line.
const TILE: u32 = 4;

fn tile_offset(x: u32, y: u32, width: u32) -> u64 {
    let tiles_per_row = width.div_ceil(TILE);
    let block = (y / TILE) as u64 * tiles_per_row as u64 + (x / TILE) as u64;
    let within = ((y % TILE) * TILE + (x % TILE)) as u64;
    block * (TILE * TILE) as u64 + within
}

impl Texture {
    /// Builds a texture from an image, optionally generating the full mip
    /// chain, and allocates its storage in `vram`.
    ///
    /// For DXT formats each level is block-encoded and decoded back, so
    /// sampled colors carry real compression error.
    pub fn from_image(image: &Image, format: TexFormat, gen_mips: bool, vram: &mut AddressSpace) -> Self {
        let mut levels = Vec::new();
        let mut current = image.clone();
        loop {
            let stored = if format.is_compressed() {
                roundtrip_dxt(&current, format)
            } else {
                current.clone()
            };
            let compressed_bytes = format.level_bytes(current.width(), current.height());
            let uncompressed_bytes = 4 * (current.width().div_ceil(TILE) as u64)
                * (current.height().div_ceil(TILE) as u64)
                * (TILE * TILE) as u64;
            let base_compressed = vram.alloc(compressed_bytes, 256);
            let base_uncompressed = vram.alloc(uncompressed_bytes, 256);
            levels.push(MipLevel { image: stored, base_uncompressed, base_compressed, compressed_bytes });
            if !gen_mips || (current.width() == 1 && current.height() == 1) {
                break;
            }
            current = current.downsample();
        }
        Texture { format, levels }
    }

    /// Total VRAM [`from_image`](Texture::from_image) would allocate for
    /// this texture (compressed + decompressed-space backing of every
    /// level), without encoding anything. Lets a caller enforce a memory
    /// budget *before* committing the allocation.
    pub fn footprint_bytes(image: &Image, format: TexFormat, gen_mips: bool) -> u64 {
        let (mut w, mut h) = (image.width(), image.height());
        let mut total = 0u64;
        loop {
            total += format.level_bytes(w, h);
            total += 4 * (w.div_ceil(TILE) as u64)
                * (h.div_ceil(TILE) as u64)
                * (TILE * TILE) as u64;
            if !gen_mips || (w == 1 && h == 1) {
                break;
            }
            w = (w / 2).max(1);
            h = (h / 2).max(1);
        }
        total
    }

    /// The storage format.
    pub fn format(&self) -> TexFormat {
        self.format
    }

    /// Number of mip levels.
    pub fn mip_count(&self) -> usize {
        self.levels.len()
    }

    /// Width of mip level 0.
    pub fn width(&self) -> u32 {
        self.levels[0].image.width()
    }

    /// Height of mip level 0.
    pub fn height(&self) -> u32 {
        self.levels[0].image.height()
    }

    /// Dimensions of a mip level.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn level_dims(&self, level: usize) -> (u32, u32) {
        let img = &self.levels[level].image;
        (img.width(), img.height())
    }

    /// Total compressed bytes across all levels (the texture's GPU memory
    /// footprint).
    pub fn memory_bytes(&self) -> u64 {
        self.levels.iter().map(|l| l.compressed_bytes).sum()
    }

    /// The texel color at integer coordinates within a level, as stored
    /// (post compression roundtrip), normalized to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `level` or the coordinates are out of range.
    #[inline]
    pub fn texel(&self, level: usize, x: u32, y: u32) -> gwc_math::Vec4 {
        let t = self.levels[level].image.get(x, y);
        gwc_math::Vec4::new(
            t[0] as f32 / 255.0,
            t[1] as f32 / 255.0,
            t[2] as f32 / 255.0,
            t[3] as f32 / 255.0,
        )
    }

    /// Both addresses of a texel (see [`TexelAddress`]).
    ///
    /// # Panics
    ///
    /// Panics if `level` or the coordinates are out of range.
    pub fn texel_address(&self, level: usize, x: u32, y: u32) -> TexelAddress {
        let lvl = &self.levels[level];
        let w = lvl.image.width();
        let h = lvl.image.height();
        assert!(x < w && y < h, "texel ({x},{y}) out of range for level {level}");
        let uncompressed = lvl.base_uncompressed + tile_offset(x, y, w) * 4;
        let bd = self.format.block_dim();
        let blocks_per_row = w.div_ceil(bd) as u64;
        let block = (y / bd) as u64 * blocks_per_row + (x / bd) as u64;
        let compressed = lvl.base_compressed + block * self.format.block_bytes() as u64;
        TexelAddress { uncompressed, compressed }
    }
}

fn roundtrip_dxt(image: &Image, format: TexFormat) -> Image {
    let w = image.width();
    let h = image.height();
    let mut out = Image::solid(w, h, [0; 4]);
    for by in 0..h.div_ceil(4) {
        for bx in 0..w.div_ceil(4) {
            let mut block = [[0u8; 4]; 16];
            for iy in 0..4 {
                for ix in 0..4 {
                    let x = (bx * 4 + ix).min(w - 1);
                    let y = (by * 4 + iy).min(h - 1);
                    block[(iy * 4 + ix) as usize] = image.get(x, y);
                }
            }
            let decoded = dxt::decode_block(&dxt::encode_block(&block, format), format);
            for iy in 0..4 {
                for ix in 0..4 {
                    let x = bx * 4 + ix;
                    let y = by * 4 + iy;
                    if x < w && y < h {
                        out.set(x, y, decoded[(iy * 4 + ix) as usize]);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vram() -> AddressSpace {
        AddressSpace::new()
    }

    #[test]
    fn mip_chain_full_depth() {
        let img = Image::solid(64, 32, [10, 20, 30, 255]);
        let t = Texture::from_image(&img, TexFormat::Rgba8, true, &mut vram());
        // 64x32 -> 32x16 -> ... -> 1x1: 7 levels.
        assert_eq!(t.mip_count(), 7);
        assert_eq!(t.level_dims(0), (64, 32));
        assert_eq!(t.level_dims(6), (1, 1));
    }

    #[test]
    fn no_mips_when_disabled() {
        let img = Image::solid(16, 16, [0; 4]);
        let t = Texture::from_image(&img, TexFormat::Rgba8, false, &mut vram());
        assert_eq!(t.mip_count(), 1);
    }

    #[test]
    fn memory_footprint_dxt1_vs_rgba8() {
        let img = Image::noise(128, 128, 7);
        let mut v = vram();
        let raw = Texture::from_image(&img, TexFormat::Rgba8, false, &mut v);
        let dxt = Texture::from_image(&img, TexFormat::Dxt1, false, &mut v);
        assert_eq!(raw.memory_bytes(), 128 * 128 * 4);
        assert_eq!(dxt.memory_bytes(), raw.memory_bytes() / 8);
    }

    #[test]
    fn dxt_roundtrip_applied_to_stored_texels() {
        // A solid texture should survive the roundtrip almost exactly.
        let img = Image::solid(16, 16, [200, 100, 40, 255]);
        let t = Texture::from_image(&img, TexFormat::Dxt1, false, &mut vram());
        let c = t.texel(0, 5, 5);
        assert!((c.x - 200.0 / 255.0).abs() < 0.05);
        assert!((c.y - 100.0 / 255.0).abs() < 0.05);
    }

    #[test]
    fn texel_addresses_unique_within_level() {
        let img = Image::solid(16, 16, [0; 4]);
        let t = Texture::from_image(&img, TexFormat::Dxt1, false, &mut vram());
        let mut seen = std::collections::HashSet::new();
        for y in 0..16 {
            for x in 0..16 {
                assert!(seen.insert(t.texel_address(0, x, y).uncompressed));
            }
        }
    }

    #[test]
    fn texels_in_same_dxt_block_share_compressed_address() {
        let img = Image::solid(16, 16, [0; 4]);
        let t = Texture::from_image(&img, TexFormat::Dxt1, false, &mut vram());
        let a = t.texel_address(0, 0, 0);
        let b = t.texel_address(0, 3, 3);
        let c = t.texel_address(0, 4, 0);
        assert_eq!(a.compressed, b.compressed);
        assert_eq!(c.compressed, a.compressed + 8);
    }

    #[test]
    fn uncompressed_tile_is_one_l0_line() {
        let img = Image::solid(16, 16, [0; 4]);
        let t = Texture::from_image(&img, TexFormat::Rgba8, false, &mut vram());
        let base = t.texel_address(0, 0, 0).uncompressed;
        for y in 0..4 {
            for x in 0..4 {
                let a = t.texel_address(0, x, y).uncompressed;
                assert!(a >= base && a < base + 64);
            }
        }
        assert_eq!(t.texel_address(0, 4, 0).uncompressed, base + 64);
    }

    #[test]
    fn levels_have_disjoint_address_ranges() {
        let img = Image::solid(32, 32, [0; 4]);
        let t = Texture::from_image(&img, TexFormat::Dxt5, true, &mut vram());
        let a0 = t.texel_address(0, 31, 31);
        let a1 = t.texel_address(1, 0, 0);
        assert_ne!(a0.compressed, a1.compressed);
        assert_ne!(a0.uncompressed, a1.uncompressed);
    }

    #[test]
    fn mip_of_checkerboard_averages_to_grey() {
        let img = Image::checkerboard(64, 64, 1, [255, 255, 255, 255], [0, 0, 0, 255]);
        let t = Texture::from_image(&img, TexFormat::Rgba8, true, &mut vram());
        // 1-texel cells average to mid-grey by the first mip.
        let c = t.texel(1, 3, 3);
        assert!((c.x - 0.5).abs() < 0.01, "got {}", c.x);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn texel_address_out_of_range_panics() {
        let img = Image::solid(8, 8, [0; 4]);
        let t = Texture::from_image(&img, TexFormat::Rgba8, false, &mut vram());
        let _ = t.texel_address(0, 8, 0);
    }
}
