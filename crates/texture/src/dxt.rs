//! S3TC (DXT1/DXT3/DXT5) block compression.
//!
//! Real encoders and decoders, not placeholders: the encoder picks block
//! endpoints along the color range, quantizes them to RGB565 and assigns
//! 2-bit palette indices; the decoders reverse the process bit-exactly the
//! way a GPU's texture unit does. Compression artifacts therefore appear in
//! sampled colors exactly as on hardware.

/// Encodes one RGB565 color from 8-bit channels.
fn pack_565(r: u8, g: u8, b: u8) -> u16 {
    ((r as u16 >> 3) << 11) | ((g as u16 >> 2) << 5) | (b as u16 >> 3)
}

/// Decodes RGB565 to 8-bit channels (with bit replication).
fn unpack_565(c: u16) -> [u8; 3] {
    let r5 = ((c >> 11) & 0x1f) as u8;
    let g6 = ((c >> 5) & 0x3f) as u8;
    let b5 = (c & 0x1f) as u8;
    [(r5 << 3) | (r5 >> 2), (g6 << 2) | (g6 >> 4), (b5 << 3) | (b5 >> 2)]
}

fn color_palette(c0: u16, c1: u16, dxt1_mode: bool) -> [[u8; 4]; 4] {
    let a = unpack_565(c0);
    let b = unpack_565(c1);
    let mix = |x: u8, y: u8, num: u16, den: u16| ((x as u16 * num + y as u16 * (den - num)) / den) as u8;
    if !dxt1_mode || c0 > c1 {
        [
            [a[0], a[1], a[2], 255],
            [b[0], b[1], b[2], 255],
            [mix(a[0], b[0], 2, 3), mix(a[1], b[1], 2, 3), mix(a[2], b[2], 2, 3), 255],
            [mix(a[0], b[0], 1, 3), mix(a[1], b[1], 1, 3), mix(a[2], b[2], 1, 3), 255],
        ]
    } else {
        [
            [a[0], a[1], a[2], 255],
            [b[0], b[1], b[2], 255],
            [mix(a[0], b[0], 1, 2), mix(a[1], b[1], 1, 2), mix(a[2], b[2], 1, 2), 255],
            [0, 0, 0, 0], // transparent black
        ]
    }
}

/// Encodes a 4×4 block of RGBA texels (row-major, 16 entries) into an
/// 8-byte DXT1 color block.
///
/// # Panics
///
/// Panics if `texels.len() != 16`.
pub fn encode_color_block(texels: &[[u8; 4]]) -> [u8; 8] {
    assert_eq!(texels.len(), 16, "DXT block must have 16 texels");
    // Endpoints: min/max along luminance.
    let luma = |t: &[u8; 4]| 299 * t[0] as u32 + 587 * t[1] as u32 + 114 * t[2] as u32;
    let (mut lo, mut hi) = (&texels[0], &texels[0]);
    for t in texels {
        if luma(t) < luma(lo) {
            lo = t;
        }
        if luma(t) > luma(hi) {
            hi = t;
        }
    }
    let mut c0 = pack_565(hi[0], hi[1], hi[2]);
    let mut c1 = pack_565(lo[0], lo[1], lo[2]);
    if c0 < c1 {
        std::mem::swap(&mut c0, &mut c1);
    } else if c0 == c1 && c0 > 0 {
        // Force the 4-color mode by separating the endpoints minimally.
        c1 -= 1;
    }
    let palette = color_palette(c0, c1, true);
    let mut indices = 0u32;
    for (i, t) in texels.iter().enumerate() {
        let mut best = 0usize;
        let mut best_d = u32::MAX;
        for (pi, p) in palette.iter().enumerate().take(if c0 > c1 { 4 } else { 3 }) {
            let d = (t[0] as i32 - p[0] as i32).pow(2) as u32
                + (t[1] as i32 - p[1] as i32).pow(2) as u32
                + (t[2] as i32 - p[2] as i32).pow(2) as u32;
            if d < best_d {
                best_d = d;
                best = pi;
            }
        }
        indices |= (best as u32) << (2 * i);
    }
    let mut out = [0u8; 8];
    out[0..2].copy_from_slice(&c0.to_le_bytes());
    out[2..4].copy_from_slice(&c1.to_le_bytes());
    out[4..8].copy_from_slice(&indices.to_le_bytes());
    out
}

/// Decodes an 8-byte DXT1 color block into 16 RGBA texels.
///
/// # Panics
///
/// Panics if `block.len() != 8`.
pub fn decode_color_block(block: &[u8], dxt1_mode: bool) -> [[u8; 4]; 16] {
    assert_eq!(block.len(), 8, "DXT color block is 8 bytes");
    let c0 = u16::from_le_bytes([block[0], block[1]]);
    let c1 = u16::from_le_bytes([block[2], block[3]]);
    let indices = u32::from_le_bytes([block[4], block[5], block[6], block[7]]);
    let palette = color_palette(c0, c1, dxt1_mode);
    let mut out = [[0u8; 4]; 16];
    for (i, texel) in out.iter_mut().enumerate() {
        *texel = palette[((indices >> (2 * i)) & 3) as usize];
    }
    out
}

/// Encodes 16 alpha values as a DXT3 explicit 4-bit alpha block (8 bytes).
pub fn encode_alpha_dxt3(alphas: &[u8; 16]) -> [u8; 8] {
    let mut out = [0u8; 8];
    for i in 0..8 {
        let a0 = alphas[2 * i] >> 4;
        let a1 = alphas[2 * i + 1] >> 4;
        out[i] = a0 | (a1 << 4);
    }
    out
}

/// Decodes a DXT3 alpha block.
pub fn decode_alpha_dxt3(block: &[u8]) -> [u8; 16] {
    assert_eq!(block.len(), 8, "DXT3 alpha block is 8 bytes");
    let mut out = [0u8; 16];
    for i in 0..8 {
        let lo = block[i] & 0x0f;
        let hi = block[i] >> 4;
        out[2 * i] = lo << 4 | lo;
        out[2 * i + 1] = hi << 4 | hi;
    }
    out
}

fn alpha_palette(a0: u8, a1: u8) -> [u8; 8] {
    let mut p = [0u8; 8];
    p[0] = a0;
    p[1] = a1;
    if a0 > a1 {
        for i in 1..7 {
            p[i + 1] = (((7 - i) as u16 * a0 as u16 + i as u16 * a1 as u16) / 7) as u8;
        }
    } else {
        for i in 1..5 {
            p[i + 1] = (((5 - i) as u16 * a0 as u16 + i as u16 * a1 as u16) / 5) as u8;
        }
        p[6] = 0;
        p[7] = 255;
    }
    p
}

/// Encodes 16 alpha values as a DXT5 interpolated alpha block (8 bytes).
pub fn encode_alpha_dxt5(alphas: &[u8; 16]) -> [u8; 8] {
    let a0 = *alphas.iter().max().unwrap();
    let a1 = *alphas.iter().min().unwrap();
    let (a0, a1) = if a0 == a1 { (a0, a0) } else { (a0, a1) };
    let palette = alpha_palette(a0, a1);
    let mut bits: u64 = 0;
    for (i, &a) in alphas.iter().enumerate() {
        let mut best = 0u64;
        let mut best_d = u16::MAX;
        for (pi, &p) in palette.iter().enumerate() {
            let d = (a as i16 - p as i16).unsigned_abs();
            if d < best_d {
                best_d = d;
                best = pi as u64;
            }
        }
        bits |= best << (3 * i);
    }
    let mut out = [0u8; 8];
    out[0] = a0;
    out[1] = a1;
    out[2..8].copy_from_slice(&bits.to_le_bytes()[0..6]);
    out
}

/// Decodes a DXT5 alpha block.
pub fn decode_alpha_dxt5(block: &[u8]) -> [u8; 16] {
    assert_eq!(block.len(), 8, "DXT5 alpha block is 8 bytes");
    let palette = alpha_palette(block[0], block[1]);
    let mut bits = [0u8; 8];
    bits[0..6].copy_from_slice(&block[2..8]);
    let bits = u64::from_le_bytes(bits);
    let mut out = [0u8; 16];
    for (i, texel) in out.iter_mut().enumerate() {
        *texel = palette[((bits >> (3 * i)) & 7) as usize];
    }
    out
}

/// Encodes a full 4×4 RGBA block in the given DXT flavour.
///
/// Returns 8 bytes for DXT1 and 16 for DXT3/DXT5.
///
/// # Panics
///
/// Panics if `texels.len() != 16` or `format` is not a DXT format.
pub fn encode_block(texels: &[[u8; 4]], format: crate::TexFormat) -> Vec<u8> {
    assert_eq!(texels.len(), 16);
    let color = encode_color_block(texels);
    match format {
        crate::TexFormat::Dxt1 => color.to_vec(),
        crate::TexFormat::Dxt3 => {
            let alphas: [u8; 16] = std::array::from_fn(|i| texels[i][3]);
            let mut out = encode_alpha_dxt3(&alphas).to_vec();
            out.extend_from_slice(&color);
            out
        }
        crate::TexFormat::Dxt5 => {
            let alphas: [u8; 16] = std::array::from_fn(|i| texels[i][3]);
            let mut out = encode_alpha_dxt5(&alphas).to_vec();
            out.extend_from_slice(&color);
            out
        }
        other => panic!("encode_block: {other:?} is not a DXT format"),
    }
}

/// Decodes a DXT block produced by [`encode_block`].
///
/// # Panics
///
/// Panics on wrong block length or non-DXT format.
pub fn decode_block(block: &[u8], format: crate::TexFormat) -> [[u8; 4]; 16] {
    match format {
        crate::TexFormat::Dxt1 => decode_color_block(block, true),
        crate::TexFormat::Dxt3 => {
            let alphas = decode_alpha_dxt3(&block[0..8]);
            let mut texels = decode_color_block(&block[8..16], false);
            for i in 0..16 {
                texels[i][3] = alphas[i];
            }
            texels
        }
        crate::TexFormat::Dxt5 => {
            let alphas = decode_alpha_dxt5(&block[0..8]);
            let mut texels = decode_color_block(&block[8..16], false);
            for i in 0..16 {
                texels[i][3] = alphas[i];
            }
            texels
        }
        other => panic!("decode_block: {other:?} is not a DXT format"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TexFormat;

    fn solid(color: [u8; 4]) -> Vec<[u8; 4]> {
        vec![color; 16]
    }

    #[test]
    fn rgb565_roundtrip_extremes() {
        assert_eq!(unpack_565(pack_565(255, 255, 255)), [255, 255, 255]);
        assert_eq!(unpack_565(pack_565(0, 0, 0)), [0, 0, 0]);
    }

    #[test]
    fn solid_block_roundtrips_closely() {
        for color in [[255u8, 0, 0, 255], [0, 255, 0, 255], [13, 77, 211, 255], [128, 128, 128, 255]] {
            let enc = encode_color_block(&solid(color));
            let dec = decode_color_block(&enc, true);
            for t in dec {
                for c in 0..3 {
                    assert!(
                        (t[c] as i16 - color[c] as i16).abs() <= 8,
                        "channel {c}: {} vs {}",
                        t[c],
                        color[c]
                    );
                }
            }
        }
    }

    #[test]
    fn gradient_block_error_bounded() {
        let texels: Vec<[u8; 4]> = (0..16).map(|i| {
            let v = (i * 16) as u8;
            [v, v, v, 255]
        }).collect();
        let enc = encode_color_block(&texels);
        let dec = decode_color_block(&enc, true);
        for (orig, got) in texels.iter().zip(dec.iter()) {
            // 2-bit palette over a full gradient: error within ~1/3 range + 565 quantization.
            assert!((orig[0] as i16 - got[0] as i16).abs() <= 48);
        }
    }

    #[test]
    fn dxt3_alpha_roundtrip() {
        let alphas: [u8; 16] = std::array::from_fn(|i| (i * 17) as u8);
        let dec = decode_alpha_dxt3(&encode_alpha_dxt3(&alphas));
        for (a, b) in alphas.iter().zip(dec.iter()) {
            assert!((*a as i16 - *b as i16).abs() <= 17, "{a} vs {b}");
        }
    }

    #[test]
    fn dxt5_alpha_roundtrip_precision() {
        let alphas: [u8; 16] = std::array::from_fn(|i| 100 + (i * 3) as u8);
        let dec = decode_alpha_dxt5(&encode_alpha_dxt5(&alphas));
        for (a, b) in alphas.iter().zip(dec.iter()) {
            // DXT5's 8-entry interpolated palette is much tighter than DXT3's 4-bit.
            assert!((*a as i16 - *b as i16).abs() <= 6, "{a} vs {b}");
        }
    }

    #[test]
    fn dxt5_constant_alpha_exact() {
        let alphas = [200u8; 16];
        assert_eq!(decode_alpha_dxt5(&encode_alpha_dxt5(&alphas)), alphas);
    }

    #[test]
    fn full_block_sizes() {
        let t = solid([1, 2, 3, 4]);
        assert_eq!(encode_block(&t, TexFormat::Dxt1).len(), 8);
        assert_eq!(encode_block(&t, TexFormat::Dxt3).len(), 16);
        assert_eq!(encode_block(&t, TexFormat::Dxt5).len(), 16);
    }

    #[test]
    fn dxt5_full_roundtrip_with_alpha() {
        let texels: Vec<[u8; 4]> = (0..16).map(|i| [200, 100, 50, (i * 16) as u8]).collect();
        let enc = encode_block(&texels, TexFormat::Dxt5);
        let dec = decode_block(&enc, TexFormat::Dxt5);
        for (orig, got) in texels.iter().zip(dec.iter()) {
            assert!((orig[3] as i16 - got[3] as i16).abs() <= 16);
            assert!((orig[0] as i16 - got[0] as i16).abs() <= 8);
        }
    }

    #[test]
    #[should_panic(expected = "not a DXT format")]
    fn encode_rgba8_panics() {
        encode_block(&solid([0; 4]), TexFormat::Rgba8);
    }

    #[test]
    fn two_color_block_preserves_both() {
        let mut texels = solid([255, 0, 0, 255]);
        for t in texels.iter_mut().take(8) {
            *t = [0, 0, 255, 255];
        }
        let enc = encode_color_block(&texels);
        let dec = decode_color_block(&enc, true);
        // Reds stay reddish, blues stay bluish.
        assert!(dec[0][2] > dec[0][0]);
        assert!(dec[15][0] > dec[15][2]);
    }
}
