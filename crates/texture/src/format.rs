//! Texture storage formats.

use serde::{Deserialize, Serialize};

/// Texture storage formats supported by the simulator.
///
/// The paper notes the three simulated benchmarks compress "most of the
/// texture data" as DXT1/DXT3/DXT5, which together with the texture cache
/// cuts texture bandwidth "almost to a tenth" of the uncompressed cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TexFormat {
    /// 8-bit RGBA, 4 bytes per texel, uncompressed.
    Rgba8,
    /// 8-bit luminance, 1 byte per texel, uncompressed.
    L8,
    /// S3TC BC1: 4×4 blocks, 8 bytes per block (0.5 B/texel), 1-bit alpha.
    Dxt1,
    /// S3TC BC2: 4×4 blocks, 16 bytes per block, explicit 4-bit alpha.
    Dxt3,
    /// S3TC BC3: 4×4 blocks, 16 bytes per block, interpolated alpha.
    Dxt5,
}

impl TexFormat {
    /// Width/height of a compression block (1 for uncompressed formats).
    pub fn block_dim(self) -> u32 {
        match self {
            TexFormat::Rgba8 | TexFormat::L8 => 1,
            TexFormat::Dxt1 | TexFormat::Dxt3 | TexFormat::Dxt5 => 4,
        }
    }

    /// Bytes per compression block.
    pub fn block_bytes(self) -> u32 {
        match self {
            TexFormat::Rgba8 => 4,
            TexFormat::L8 => 1,
            TexFormat::Dxt1 => 8,
            TexFormat::Dxt3 | TexFormat::Dxt5 => 16,
        }
    }

    /// `true` for block-compressed formats.
    pub fn is_compressed(self) -> bool {
        self.block_dim() > 1
    }

    /// Storage bytes for a `width × height` level in this format.
    pub fn level_bytes(self, width: u32, height: u32) -> u64 {
        let bd = self.block_dim();
        let bx = width.div_ceil(bd) as u64;
        let by = height.div_ceil(bd) as u64;
        bx * by * self.block_bytes() as u64
    }

    /// Average bytes per texel (fractional for DXT1).
    pub fn bytes_per_texel(self) -> f64 {
        self.block_bytes() as f64 / (self.block_dim() * self.block_dim()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_geometry() {
        assert_eq!(TexFormat::Rgba8.block_dim(), 1);
        assert_eq!(TexFormat::Dxt1.block_dim(), 4);
        assert_eq!(TexFormat::Dxt1.block_bytes(), 8);
        assert_eq!(TexFormat::Dxt5.block_bytes(), 16);
    }

    #[test]
    fn level_bytes_rounding() {
        // 5x5 DXT1 needs 2x2 blocks.
        assert_eq!(TexFormat::Dxt1.level_bytes(5, 5), 4 * 8);
        assert_eq!(TexFormat::Rgba8.level_bytes(5, 5), 100);
        assert_eq!(TexFormat::L8.level_bytes(8, 8), 64);
    }

    #[test]
    fn compression_ratios() {
        // DXT1 is 8:1 vs RGBA8; DXT3/5 are 4:1.
        assert!((TexFormat::Rgba8.bytes_per_texel() / TexFormat::Dxt1.bytes_per_texel() - 8.0).abs() < 1e-12);
        assert!((TexFormat::Rgba8.bytes_per_texel() / TexFormat::Dxt5.bytes_per_texel() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn compressed_flags() {
        assert!(TexFormat::Dxt3.is_compressed());
        assert!(!TexFormat::L8.is_compressed());
    }
}
