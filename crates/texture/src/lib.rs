//! Texture storage, compression, mipmapping and filtering.
//!
//! Texturing dominates both the fragment-shader workload (Table XII's
//! texture instructions) and memory bandwidth (Table XVI gives texturing
//! 23–42% of all GPU traffic). Two properties the paper measures are
//! modelled faithfully here:
//!
//! - **Filtering cost.** The texture throughput of the simulated GPU is one
//!   *bilinear sample* per cycle per pipe; trilinear costs 2 bilinears and
//!   anisotropic filtering up to `2 × N` for an `N`-tap filter. The
//!   dynamic bilinear-per-request ratio is Table XIII's key statistic, and
//!   it emerges here from real derivative-based LOD and anisotropy
//!   computation on quad footprints.
//! - **Compressed storage.** Game textures are DXT1/3/5 compressed; the
//!   texture cache L1 stores compressed blocks while L0 stores decompressed
//!   texels. This crate implements real DXT encode/decode and exposes both
//!   the uncompressed and compressed address of every texel so the
//!   pipeline's two-level cache model behaves like the hardware.
//!
//! # Examples
//!
//! ```
//! use gwc_math::Vec4;
//! use gwc_mem::AddressSpace;
//! use gwc_texture::{Image, SamplerState, TexFormat, Texture};
//!
//! let img = Image::checkerboard(64, 64, 8, [255, 0, 0, 255], [0, 0, 255, 255]);
//! let mut vram = AddressSpace::new();
//! let tex = Texture::from_image(&img, TexFormat::Dxt1, true, &mut vram);
//! assert!(tex.mip_count() > 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dxt;
mod format;
mod image;
mod sampler;
mod texture;

pub use format::TexFormat;
pub use image::Image;
pub use sampler::{FilterMode, NoopTracker, SampleStats, SamplerState, TexelTracker, WrapMode};
pub use texture::{Texture, TexelAddress};
