//! CPU-side RGBA images: the source data textures are built from.

use serde::{Deserialize, Serialize};

/// An RGBA8 image in row-major order.
///
/// Images are the input to [`Texture::from_image`](crate::Texture::from_image)
/// and also serve as mip-level storage after decoding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Image {
    width: u32,
    height: u32,
    texels: Vec<[u8; 4]>,
}

impl Image {
    /// Creates a solid-color image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn solid(width: u32, height: u32, color: [u8; 4]) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        Image { width, height, texels: vec![color; (width * height) as usize] }
    }

    /// Creates an image from a generator function `f(x, y)`.
    pub fn from_fn(width: u32, height: u32, mut f: impl FnMut(u32, u32) -> [u8; 4]) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        let mut texels = Vec::with_capacity((width * height) as usize);
        for y in 0..height {
            for x in 0..width {
                texels.push(f(x, y));
            }
        }
        Image { width, height, texels }
    }

    /// A checkerboard of `cell`-sized squares — the classic mipmap/filtering
    /// test pattern.
    pub fn checkerboard(width: u32, height: u32, cell: u32, a: [u8; 4], b: [u8; 4]) -> Self {
        let cell = cell.max(1);
        Image::from_fn(width, height, |x, y| {
            if ((x / cell) + (y / cell)).is_multiple_of(2) {
                a
            } else {
                b
            }
        })
    }

    /// A deterministic value-noise image (hash-based, no dependencies) —
    /// used by the synthetic workloads for surface detail.
    pub fn noise(width: u32, height: u32, seed: u64) -> Self {
        let hash = |x: u32, y: u32| -> u8 {
            let mut h = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((x as u64) << 32 | y as u64);
            h ^= h >> 33;
            h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
            h ^= h >> 33;
            (h & 0xff) as u8
        };
        Image::from_fn(width, height, |x, y| {
            let v = hash(x, y);
            [v, v.wrapping_add(hash(y, x) / 4), v / 2 + 64, 255]
        })
    }

    /// Image width in texels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in texels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Texel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> [u8; 4] {
        assert!(x < self.width && y < self.height, "texel ({x},{y}) out of bounds");
        self.texels[(y * self.width + x) as usize]
    }

    /// Sets the texel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, color: [u8; 4]) {
        assert!(x < self.width && y < self.height, "texel ({x},{y}) out of bounds");
        self.texels[(y * self.width + x) as usize] = color;
    }

    /// Raw texel storage.
    pub fn texels(&self) -> &[[u8; 4]] {
        &self.texels
    }

    /// Box-filter downsample to half resolution (minimum 1×1). This is the
    /// standard mipmap generation filter.
    pub fn downsample(&self) -> Image {
        let nw = (self.width / 2).max(1);
        let nh = (self.height / 2).max(1);
        Image::from_fn(nw, nh, |x, y| {
            let x0 = (2 * x).min(self.width - 1);
            let x1 = (2 * x + 1).min(self.width - 1);
            let y0 = (2 * y).min(self.height - 1);
            let y1 = (2 * y + 1).min(self.height - 1);
            let mut acc = [0u32; 4];
            for (sx, sy) in [(x0, y0), (x1, y0), (x0, y1), (x1, y1)] {
                let t = self.get(sx, sy);
                for c in 0..4 {
                    acc[c] += t[c] as u32;
                }
            }
            [(acc[0] / 4) as u8, (acc[1] / 4) as u8, (acc[2] / 4) as u8, (acc[3] / 4) as u8]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solid_is_uniform() {
        let img = Image::solid(4, 3, [9, 8, 7, 6]);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert!(img.texels().iter().all(|&t| t == [9, 8, 7, 6]));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_panics() {
        Image::solid(0, 4, [0; 4]);
    }

    #[test]
    fn checkerboard_alternates() {
        let img = Image::checkerboard(4, 4, 2, [255; 4], [0; 4]);
        assert_eq!(img.get(0, 0), [255; 4]);
        assert_eq!(img.get(2, 0), [0; 4]);
        assert_eq!(img.get(2, 2), [255; 4]);
        assert_eq!(img.get(0, 2), [0; 4]);
    }

    #[test]
    fn noise_is_deterministic_and_varied() {
        let a = Image::noise(16, 16, 42);
        let b = Image::noise(16, 16, 42);
        assert_eq!(a, b);
        let c = Image::noise(16, 16, 43);
        assert_ne!(a, c);
        let first = a.get(0, 0);
        assert!(a.texels().iter().any(|&t| t != first), "noise should vary");
    }

    #[test]
    fn downsample_halves_dimensions() {
        let img = Image::solid(8, 4, [100; 4]);
        let d = img.downsample();
        assert_eq!((d.width(), d.height()), (4, 2));
        assert_eq!(d.get(0, 0), [100; 4]);
    }

    #[test]
    fn downsample_averages() {
        let mut img = Image::solid(2, 2, [0; 4]);
        img.set(0, 0, [255, 0, 0, 255]);
        img.set(1, 0, [0, 255, 0, 255]);
        let d = img.downsample();
        assert_eq!((d.width(), d.height()), (1, 1));
        let t = d.get(0, 0);
        assert_eq!(t[0], 63);
        assert_eq!(t[1], 63);
        assert_eq!(t[3], 127);
    }

    #[test]
    fn downsample_to_one_texel_terminates() {
        let mut img = Image::solid(16, 4, [7; 4]);
        for _ in 0..10 {
            img = img.downsample();
        }
        assert_eq!((img.width(), img.height()), (1, 1));
    }

    #[test]
    fn downsample_odd_dimensions() {
        let img = Image::solid(5, 3, [50; 4]);
        let d = img.downsample();
        assert_eq!((d.width(), d.height()), (2, 1));
    }
}
