//! Property tests for the trace codec's robustness guarantees.
//!
//! The codec must uphold three properties against arbitrary input damage:
//! an unmutated round-trip is bit-exact, a mutated blob *never panics* the
//! decoder (it may decode to something else — the format is not
//! error-detecting — but must fail *cleanly* when it fails), and a
//! truncated blob always errors.

use gwc_api::{ClearMask, Command, Indices, StateCommand, Trace, VertexLayout};
use gwc_math::Vec4;
use gwc_raster::PrimitiveType;
use proptest::prelude::*;

/// A small but representative trace: resource creation, state, constants,
/// draws and frame boundaries, parameterized so cases differ structurally.
fn build_trace(vertices: usize, draws: usize, constants: usize) -> Trace {
    let mut t = Trace::new();
    let data: Vec<Vec4> =
        (0..vertices * 2).map(|i| Vec4::new(i as f32, 0.5, -1.0, 1.0)).collect();
    t.push(Command::CreateVertexBuffer {
        id: 1,
        layout: VertexLayout { attributes: 2, stride_bytes: 32 },
        data,
    });
    t.push(Command::CreateIndexBuffer {
        id: 2,
        indices: Indices::U16((0..vertices as u16).collect()),
    });
    t.push(Command::State(StateCommand::VertexConstants {
        base: 0,
        values: vec![Vec4::new(0.25, 0.5, 0.75, 1.0); constants],
    }));
    for d in 0..draws {
        t.push(Command::State(StateCommand::ColorMask(d % 2 == 0)));
        t.push(Command::Clear {
            mask: ClearMask::ALL,
            color: Vec4::new(0.0, 0.0, 0.0, 1.0),
            depth: 1.0,
            stencil: 0,
        });
        t.push(Command::Draw {
            vertex_buffer: 1,
            index_buffer: 2,
            primitive: PrimitiveType::TriangleList,
            first: 0,
            count: vertices as u32,
        });
        t.push(Command::EndFrame);
    }
    t
}

proptest! {
    /// Unmutated round-trip is bit-exact in both directions.
    #[test]
    fn roundtrip_is_bit_exact(vertices in 3usize..40, draws in 1usize..6,
                              constants in 0usize..12) {
        let trace = build_trace(vertices, draws, constants);
        let bytes = trace.to_bytes();
        let decoded = Trace::from_bytes(&bytes);
        prop_assert!(decoded.is_ok(), "clean blob failed to decode: {:?}", decoded.err());
        let decoded = decoded.unwrap();
        prop_assert_eq!(&decoded, &trace);
        prop_assert_eq!(decoded.to_bytes(), bytes);
    }

    /// Flipping one byte anywhere never panics the decoder. (It may still
    /// decode — a flipped payload bit is indistinguishable from data — but
    /// whatever happens is a clean `Ok`/`Err`, with no allocation bombs.)
    #[test]
    fn single_byte_mutation_never_panics(vertices in 3usize..24, draws in 1usize..4,
                                         pos_seed in any::<u64>(), bit in 0u8..8) {
        let trace = build_trace(vertices, draws, 4);
        let mut bytes = trace.to_bytes();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        match Trace::from_bytes(&bytes) {
            Ok(_) => {} // flipped a don't-care or payload bit
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    /// Every strict prefix of an encoded trace fails to decode.
    #[test]
    fn truncation_always_errors(vertices in 3usize..24, draws in 1usize..4,
                                cut_seed in any::<u64>()) {
        let trace = build_trace(vertices, draws, 2);
        let bytes = trace.to_bytes();
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(Trace::from_bytes(&bytes[..cut]).is_err(),
                     "prefix of {cut}/{} bytes decoded", bytes.len());
    }
}
