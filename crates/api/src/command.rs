//! The traced command vocabulary.

use gwc_math::Vec4;
use gwc_raster::{BlendState, CullMode, DepthState, FrontFace, PrimitiveType, StencilState};
use gwc_shader::Program;
use gwc_texture::{Image, SamplerState, TexFormat};
use serde::{Deserialize, Serialize};

/// Which graphics API a workload targets (Table I's API column). The
/// command vocabulary is shared; the flag matters because only OpenGL
/// workloads drive the microarchitectural simulator, mirroring the paper's
/// ATTILA limitation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GraphicsApi {
    /// OpenGL (simulated microarchitecturally, like the paper's OGL set).
    OpenGl,
    /// Direct3D (API-level statistics only, like the paper's D3D set).
    Direct3D,
}

impl GraphicsApi {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            GraphicsApi::OpenGl => "OpenGL",
            GraphicsApi::Direct3D => "Direct3D",
        }
    }
}

/// Index data for an indexed draw. The element width is the "bytes per
/// index" of Table III (2 for 16-bit engines, 4 for the Doom3 engine).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Indices {
    /// 16-bit indices.
    U16(Vec<u16>),
    /// 32-bit indices.
    U32(Vec<u32>),
}

impl Indices {
    /// Number of indices.
    pub fn len(&self) -> usize {
        match self {
            Indices::U16(v) => v.len(),
            Indices::U32(v) => v.len(),
        }
    }

    /// `true` when there are no indices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes per index element.
    pub fn bytes_per_index(&self) -> u32 {
        match self {
            Indices::U16(_) => 2,
            Indices::U32(_) => 4,
        }
    }

    /// Total bytes (the CPU→GPU index traffic of Table III / Figure 2).
    pub fn total_bytes(&self) -> u64 {
        self.len() as u64 * self.bytes_per_index() as u64
    }

    /// Index at position `i`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        match self {
            Indices::U16(v) => v[i] as u32,
            Indices::U32(v) => v[i],
        }
    }
}

/// Vertex attribute layout: how many [`Vec4`] attribute slots each vertex
/// carries and how many bytes the packed vertex occupies in GPU memory.
///
/// The byte size drives Table XVII's bytes-per-vertex measurement; games of
/// the era pack position (12 B), normal (12 B), tangent (12–16 B), one or
/// two texcoord sets (8 B each) and a color (4 B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VertexLayout {
    /// Number of Vec4 attribute slots per vertex (position first).
    pub attributes: u8,
    /// Packed size of one vertex in GPU memory, in bytes.
    pub stride_bytes: u16,
}

impl VertexLayout {
    /// A typical lit-and-textured layout: position, normal, uv
    /// (12 + 12 + 8 = 32 bytes).
    pub const POS_NORMAL_UV: VertexLayout = VertexLayout { attributes: 3, stride_bytes: 32 };

    /// The Doom3-class layout: position, normal, tangent, bitangent, uv,
    /// color (12+12+12+12+8+4 = 60 bytes).
    pub const DOOM3: VertexLayout = VertexLayout { attributes: 6, stride_bytes: 60 };
}

/// Buffer masks for [`Command::Clear`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClearMask {
    /// Clear the color buffer.
    pub color: bool,
    /// Clear the depth buffer.
    pub depth: bool,
    /// Clear the stencil buffer.
    pub stencil: bool,
}

impl ClearMask {
    /// Clear all three buffers.
    pub const ALL: ClearMask = ClearMask { color: true, depth: true, stencil: true };
    /// Clear depth and stencil only (between Doom3 light passes).
    pub const DEPTH_STENCIL: ClearMask = ClearMask { color: false, depth: true, stencil: true };
}

/// A state-change API call. Each one counts toward Figure 3's
/// "state calls between batches".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StateCommand {
    /// Depth test configuration.
    Depth(DepthState),
    /// Stencil configuration for front-facing triangles.
    StencilFront(StencilState),
    /// Stencil configuration for back-facing triangles (two-sided stencil,
    /// the shadow-volume fast path).
    StencilBack(StencilState),
    /// Face culling mode.
    Cull(CullMode),
    /// Front-face winding.
    FrontFaceWinding(FrontFace),
    /// Blend configuration.
    Blend(BlendState),
    /// Color write mask (false = the Doom3 stencil-only passes).
    ColorMask(bool),
    /// Alpha test: when enabled, fragments with alpha below the reference
    /// are discarded after shading.
    AlphaTest {
        /// Test enabled.
        enabled: bool,
        /// Reference alpha in `[0, 1]`.
        reference: f32,
    },
    /// Bind a texture (with its sampler) to a texture unit.
    BindTexture {
        /// Texture unit.
        unit: u8,
        /// Texture id (from [`Command::CreateTexture`]).
        texture: u32,
    },
    /// Bind vertex and fragment programs.
    BindPrograms {
        /// Vertex program id.
        vertex: u32,
        /// Fragment program id.
        fragment: u32,
    },
    /// Set a range of vertex-program constants.
    VertexConstants {
        /// First constant register.
        base: u8,
        /// Values.
        values: Vec<Vec4>,
    },
    /// Set a range of fragment-program constants.
    FragmentConstants {
        /// First constant register.
        base: u8,
        /// Values.
        values: Vec<Vec4>,
    },
}

/// One traced API command.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Command {
    /// Upload a vertex buffer to GPU memory (startup traffic; thereafter
    /// only indices cross the bus — the "indexed mode" of Section III.A).
    CreateVertexBuffer {
        /// Buffer id (dense, app-chosen).
        id: u32,
        /// Attribute layout.
        layout: VertexLayout,
        /// `vertex_count × layout.attributes` attribute values.
        data: Vec<Vec4>,
    },
    /// Upload an index buffer.
    CreateIndexBuffer {
        /// Buffer id.
        id: u32,
        /// The indices.
        indices: Indices,
    },
    /// Create a texture from an image.
    CreateTexture {
        /// Texture id.
        id: u32,
        /// Source image.
        image: Image,
        /// GPU storage format.
        format: TexFormat,
        /// Generate a full mip chain.
        mipmaps: bool,
        /// Sampler configuration.
        sampler: SamplerState,
    },
    /// Create a shader program.
    CreateProgram {
        /// Program id.
        id: u32,
        /// The validated program.
        program: Program,
    },
    /// A state-change call.
    State(StateCommand),
    /// Clear framebuffer surfaces.
    Clear {
        /// Which surfaces.
        mask: ClearMask,
        /// Clear color.
        color: Vec4,
        /// Clear depth.
        depth: f32,
        /// Clear stencil.
        stencil: u8,
    },
    /// An indexed draw call — one *batch* in the paper's vocabulary.
    Draw {
        /// Vertex buffer id.
        vertex_buffer: u32,
        /// Index buffer id.
        index_buffer: u32,
        /// Primitive topology.
        primitive: PrimitiveType,
        /// First index.
        first: u32,
        /// Number of indices.
        count: u32,
    },
    /// Frame boundary (swap-buffers).
    EndFrame,
}

impl Command {
    /// `true` for the commands Figure 3 counts as "state calls".
    pub fn is_state_call(&self) -> bool {
        matches!(
            self,
            Command::State(_)
                | Command::CreateVertexBuffer { .. }
                | Command::CreateIndexBuffer { .. }
                | Command::CreateTexture { .. }
                | Command::CreateProgram { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_bytes() {
        let i16 = Indices::U16(vec![0, 1, 2, 3]);
        assert_eq!(i16.len(), 4);
        assert_eq!(i16.bytes_per_index(), 2);
        assert_eq!(i16.total_bytes(), 8);
        let i32 = Indices::U32(vec![7; 3]);
        assert_eq!(i32.bytes_per_index(), 4);
        assert_eq!(i32.total_bytes(), 12);
        assert_eq!(i32.get(1), 7);
        assert!(!i32.is_empty());
    }

    #[test]
    fn layouts() {
        assert_eq!(VertexLayout::POS_NORMAL_UV.stride_bytes, 32);
        assert_eq!(VertexLayout::DOOM3.stride_bytes, 60);
        assert_eq!(VertexLayout::DOOM3.attributes, 6);
    }

    #[test]
    fn state_call_classification() {
        assert!(Command::State(StateCommand::ColorMask(false)).is_state_call());
        assert!(!Command::EndFrame.is_state_call());
        assert!(!Command::Draw {
            vertex_buffer: 0,
            index_buffer: 0,
            primitive: PrimitiveType::TriangleList,
            first: 0,
            count: 3
        }
        .is_state_call());
    }

    #[test]
    fn api_names() {
        assert_eq!(GraphicsApi::OpenGl.name(), "OpenGL");
        assert_eq!(GraphicsApi::Direct3D.name(), "Direct3D");
    }
}
