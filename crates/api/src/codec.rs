//! Compact binary trace serialization.
//!
//! GLInterceptor's whole point is the trace *file*: record once, replay
//! anywhere. This module gives [`Trace`] a self-contained binary format
//! (magic + version + length-prefixed records) with no external
//! dependencies, so traces can be written to disk and replayed by a later
//! process bit-exactly.

use gwc_math::Vec4;
use gwc_raster::{BlendFactor, BlendState, CompareFunc, CullMode, DepthState, FrontFace,
                 PrimitiveType, StencilOp, StencilState};
use gwc_shader::{Instr, Opcode, Program, ProgramKind, Reg, RegFile, Src, Swizzle, WriteMask};
use gwc_texture::{FilterMode, Image, SamplerState, TexFormat, WrapMode};

use crate::command::{ClearMask, Command, Indices, StateCommand, VertexLayout};
use crate::trace::Trace;

/// File magic: `GWCT`.
const MAGIC: [u8; 4] = *b"GWCT";
/// Format version.
const VERSION: u16 = 1;

/// Errors produced when decoding a trace blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The blob does not start with the trace magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// The blob ended mid-record.
    Truncated,
    /// An enum discriminant was out of range.
    BadTag(u8),
    /// An embedded shader program failed validation on decode.
    BadProgram,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a GWC trace (bad magic)"),
            CodecError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            CodecError::Truncated => write!(f, "trace ends mid-record"),
            CodecError::BadTag(t) => write!(f, "invalid enum tag {t}"),
            CodecError::BadProgram => write!(f, "embedded program failed validation"),
        }
    }
}

impl std::error::Error for CodecError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
    fn vec4(&mut self, v: Vec4) {
        self.f32(v.x);
        self.f32(v.y);
        self.f32(v.z);
        self.f32(v.w);
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if n > self.buf.len() - self.pos {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    /// Decode-bomb guard: before trusting a length prefix, check the
    /// payload it promises actually fits in the remaining input. Callers
    /// may then size allocations from the prefix without a hostile trace
    /// turning a 4-byte header into a multi-gigabyte `Vec`.
    fn ensure(&self, bytes: usize) -> Result<(), CodecError> {
        if bytes > self.buf.len() - self.pos {
            return Err(CodecError::Truncated);
        }
        Ok(())
    }
    fn arr<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        self.take(N)?.try_into().map_err(|_| CodecError::Truncated)
    }
    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.arr()?))
    }
    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.arr()?))
    }
    fn f32(&mut self) -> Result<f32, CodecError> {
        Ok(f32::from_le_bytes(self.arr()?))
    }
    fn bool(&mut self) -> Result<bool, CodecError> {
        Ok(self.u8()? != 0)
    }
    fn vec4(&mut self) -> Result<Vec4, CodecError> {
        Ok(Vec4::new(self.f32()?, self.f32()?, self.f32()?, self.f32()?))
    }
    fn str(&mut self) -> Result<String, CodecError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Truncated)
    }
    fn done(&self) -> bool {
        self.pos >= self.buf.len()
    }
}

// ---- enum codecs ------------------------------------------------------

macro_rules! enum_codec {
    ($ty:ty, $write:ident, $read:ident, [$($variant:path),+ $(,)?]) => {
        fn $write(w: &mut Writer, v: $ty) {
            let variants = [$($variant),+];
            let idx = variants
                .iter()
                .position(|x| *x == v)
                .unwrap_or_else(|| unreachable!("every variant is listed"));
            w.u8(idx as u8);
        }
        fn $read(r: &mut Reader) -> Result<$ty, CodecError> {
            let variants = [$($variant),+];
            let tag = r.u8()?;
            variants.get(tag as usize).copied().ok_or(CodecError::BadTag(tag))
        }
    };
}

enum_codec!(PrimitiveType, w_prim, r_prim, [
    PrimitiveType::TriangleList,
    PrimitiveType::TriangleStrip,
    PrimitiveType::TriangleFan,
]);
enum_codec!(CompareFunc, w_cmp, r_cmp, [
    CompareFunc::Never,
    CompareFunc::Less,
    CompareFunc::Equal,
    CompareFunc::LessEqual,
    CompareFunc::Greater,
    CompareFunc::NotEqual,
    CompareFunc::GreaterEqual,
    CompareFunc::Always,
]);
enum_codec!(StencilOp, w_sop, r_sop, [
    StencilOp::Keep,
    StencilOp::Zero,
    StencilOp::Replace,
    StencilOp::IncrClamp,
    StencilOp::DecrClamp,
    StencilOp::IncrWrap,
    StencilOp::DecrWrap,
    StencilOp::Invert,
]);
enum_codec!(CullMode, w_cull, r_cull, [CullMode::None, CullMode::Back, CullMode::Front]);
enum_codec!(FrontFace, w_ff, r_ff, [FrontFace::Ccw, FrontFace::Cw]);
enum_codec!(BlendFactor, w_bf, r_bf, [
    BlendFactor::Zero,
    BlendFactor::One,
    BlendFactor::SrcAlpha,
    BlendFactor::OneMinusSrcAlpha,
    BlendFactor::DstColor,
    BlendFactor::SrcColor,
]);
enum_codec!(TexFormat, w_fmt, r_fmt, [
    TexFormat::Rgba8,
    TexFormat::L8,
    TexFormat::Dxt1,
    TexFormat::Dxt3,
    TexFormat::Dxt5,
]);
enum_codec!(WrapMode, w_wrap, r_wrap, [WrapMode::Repeat, WrapMode::Clamp, WrapMode::Mirror]);
enum_codec!(RegFile, w_file, r_file, [
    RegFile::Input,
    RegFile::Temp,
    RegFile::Constant,
    RegFile::Output,
]);
enum_codec!(Opcode, w_op, r_op, [
    Opcode::Mov, Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::Mad,
    Opcode::Dp3, Opcode::Dp4, Opcode::Min, Opcode::Max, Opcode::Slt,
    Opcode::Sge, Opcode::Rcp, Opcode::Rsq, Opcode::Ex2, Opcode::Lg2,
    Opcode::Frc, Opcode::Cmp, Opcode::Lrp, Opcode::Tex, Opcode::Txp,
    Opcode::Txb, Opcode::Kil,
]);

fn w_filter(w: &mut Writer, f: FilterMode) {
    match f {
        FilterMode::Nearest => w.u8(0),
        FilterMode::Bilinear => w.u8(1),
        FilterMode::Trilinear => w.u8(2),
        FilterMode::Anisotropic(n) => {
            w.u8(3);
            w.u8(n);
        }
    }
}

fn r_filter(r: &mut Reader) -> Result<FilterMode, CodecError> {
    match r.u8()? {
        0 => Ok(FilterMode::Nearest),
        1 => Ok(FilterMode::Bilinear),
        2 => Ok(FilterMode::Trilinear),
        3 => Ok(FilterMode::Anisotropic(r.u8()?)),
        t => Err(CodecError::BadTag(t)),
    }
}

fn w_depth(w: &mut Writer, d: &DepthState) {
    w.bool(d.test);
    w.bool(d.write);
    w_cmp(w, d.func);
}

fn r_depth(r: &mut Reader) -> Result<DepthState, CodecError> {
    Ok(DepthState { test: r.bool()?, write: r.bool()?, func: r_cmp(r)? })
}

fn w_stencil(w: &mut Writer, s: &StencilState) {
    w.bool(s.test);
    w_cmp(w, s.func);
    w.u8(s.reference);
    w.u8(s.read_mask);
    w_sop(w, s.fail);
    w_sop(w, s.zfail);
    w_sop(w, s.pass);
}

fn r_stencil(r: &mut Reader) -> Result<StencilState, CodecError> {
    Ok(StencilState {
        test: r.bool()?,
        func: r_cmp(r)?,
        reference: r.u8()?,
        read_mask: r.u8()?,
        fail: r_sop(r)?,
        zfail: r_sop(r)?,
        pass: r_sop(r)?,
    })
}

fn w_program(w: &mut Writer, p: &Program) {
    w.u8(match p.kind() {
        ProgramKind::Vertex => 0,
        ProgramKind::Fragment => 1,
    });
    w.str(p.name());
    w.u32(p.instructions().len() as u32);
    for i in p.instructions() {
        w_op(w, i.op);
        w_file(w, i.dst.file);
        w.u8(i.dst.index);
        for m in i.mask.0 {
            w.bool(m);
        }
        for s in i.srcs {
            w_file(w, s.reg.file);
            w.u8(s.reg.index);
            for c in s.swizzle.0 {
                w.u8(c);
            }
            w.bool(s.negate);
        }
        w.u8(i.tex_unit);
    }
}

fn r_program(r: &mut Reader) -> Result<Program, CodecError> {
    let kind = match r.u8()? {
        0 => ProgramKind::Vertex,
        1 => ProgramKind::Fragment,
        t => return Err(CodecError::BadTag(t)),
    };
    let name = r.str()?;
    let n = r.u32()? as usize;
    // 29 bytes per encoded instruction (op + dst + mask + 3 srcs + tex).
    r.ensure(n.saturating_mul(29))?;
    let mut instrs = Vec::with_capacity(n);
    for _ in 0..n {
        let op = r_op(r)?;
        let dst = Reg { file: r_file(r)?, index: r.u8()? };
        let mut mask = [false; 4];
        for m in &mut mask {
            *m = r.bool()?;
        }
        let mut srcs = [Src::constant(0); 3];
        for s in &mut srcs {
            let file = r_file(r)?;
            let index = r.u8()?;
            let mut swz = [0u8; 4];
            for c in &mut swz {
                *c = r.u8()?;
            }
            let negate = r.bool()?;
            *s = Src { reg: Reg { file, index }, swizzle: Swizzle(swz), negate };
        }
        let tex_unit = r.u8()?;
        instrs.push(Instr { op, dst, mask: WriteMask(mask), srcs, tex_unit });
    }
    Program::new(kind, name, instrs).map_err(|_| CodecError::BadProgram)
}

fn w_image(w: &mut Writer, img: &Image) {
    w.u32(img.width());
    w.u32(img.height());
    for t in img.texels() {
        w.buf.extend_from_slice(t);
    }
}

fn r_image(r: &mut Reader) -> Result<Image, CodecError> {
    let width = r.u32()?;
    let height = r.u32()?;
    if width == 0 || height == 0 || (width as u64 * height as u64) > (1 << 26) {
        return Err(CodecError::Truncated);
    }
    let bytes = r.take(width as usize * height as usize * 4)?;
    let mut i = 0usize;
    Ok(Image::from_fn(width, height, |_, _| {
        let t = [bytes[i], bytes[i + 1], bytes[i + 2], bytes[i + 3]];
        i += 4;
        t
    }))
}

fn w_command(w: &mut Writer, c: &Command) {
    match c {
        Command::CreateVertexBuffer { id, layout, data } => {
            w.u8(0);
            w.u32(*id);
            w.u8(layout.attributes);
            w.u16(layout.stride_bytes);
            w.u32(data.len() as u32);
            for v in data {
                w.vec4(*v);
            }
        }
        Command::CreateIndexBuffer { id, indices } => {
            w.u8(1);
            w.u32(*id);
            match indices {
                Indices::U16(v) => {
                    w.u8(0);
                    w.u32(v.len() as u32);
                    for &i in v {
                        w.u16(i);
                    }
                }
                Indices::U32(v) => {
                    w.u8(1);
                    w.u32(v.len() as u32);
                    for &i in v {
                        w.u32(i);
                    }
                }
            }
        }
        Command::CreateTexture { id, image, format, mipmaps, sampler } => {
            w.u8(2);
            w.u32(*id);
            w_image(w, image);
            w_fmt(w, *format);
            w.bool(*mipmaps);
            w_wrap(w, sampler.wrap);
            w_filter(w, sampler.filter);
            w.f32(sampler.lod_bias);
        }
        Command::CreateProgram { id, program } => {
            w.u8(3);
            w.u32(*id);
            w_program(w, program);
        }
        Command::State(s) => {
            w.u8(4);
            w_state(w, s);
        }
        Command::Clear { mask, color, depth, stencil } => {
            w.u8(5);
            w.bool(mask.color);
            w.bool(mask.depth);
            w.bool(mask.stencil);
            w.vec4(*color);
            w.f32(*depth);
            w.u8(*stencil);
        }
        Command::Draw { vertex_buffer, index_buffer, primitive, first, count } => {
            w.u8(6);
            w.u32(*vertex_buffer);
            w.u32(*index_buffer);
            w_prim(w, *primitive);
            w.u32(*first);
            w.u32(*count);
        }
        Command::EndFrame => w.u8(7),
    }
}

fn w_state(w: &mut Writer, s: &StateCommand) {
    match s {
        StateCommand::Depth(d) => {
            w.u8(0);
            w_depth(w, d);
        }
        StateCommand::StencilFront(st) => {
            w.u8(1);
            w_stencil(w, st);
        }
        StateCommand::StencilBack(st) => {
            w.u8(2);
            w_stencil(w, st);
        }
        StateCommand::Cull(c) => {
            w.u8(3);
            w_cull(w, *c);
        }
        StateCommand::FrontFaceWinding(f) => {
            w.u8(4);
            w_ff(w, *f);
        }
        StateCommand::Blend(b) => {
            w.u8(5);
            w.bool(b.enabled);
            w_bf(w, b.src);
            w_bf(w, b.dst);
        }
        StateCommand::ColorMask(m) => {
            w.u8(6);
            w.bool(*m);
        }
        StateCommand::AlphaTest { enabled, reference } => {
            w.u8(7);
            w.bool(*enabled);
            w.f32(*reference);
        }
        StateCommand::BindTexture { unit, texture } => {
            w.u8(8);
            w.u8(*unit);
            w.u32(*texture);
        }
        StateCommand::BindPrograms { vertex, fragment } => {
            w.u8(9);
            w.u32(*vertex);
            w.u32(*fragment);
        }
        StateCommand::VertexConstants { base, values } => {
            w.u8(10);
            w.u8(*base);
            w.u32(values.len() as u32);
            for v in values {
                w.vec4(*v);
            }
        }
        StateCommand::FragmentConstants { base, values } => {
            w.u8(11);
            w.u8(*base);
            w.u32(values.len() as u32);
            for v in values {
                w.vec4(*v);
            }
        }
    }
}

fn r_state(r: &mut Reader) -> Result<StateCommand, CodecError> {
    Ok(match r.u8()? {
        0 => StateCommand::Depth(r_depth(r)?),
        1 => StateCommand::StencilFront(r_stencil(r)?),
        2 => StateCommand::StencilBack(r_stencil(r)?),
        3 => StateCommand::Cull(r_cull(r)?),
        4 => StateCommand::FrontFaceWinding(r_ff(r)?),
        5 => StateCommand::Blend(BlendState { enabled: r.bool()?, src: r_bf(r)?, dst: r_bf(r)? }),
        6 => StateCommand::ColorMask(r.bool()?),
        7 => StateCommand::AlphaTest { enabled: r.bool()?, reference: r.f32()? },
        8 => StateCommand::BindTexture { unit: r.u8()?, texture: r.u32()? },
        9 => StateCommand::BindPrograms { vertex: r.u32()?, fragment: r.u32()? },
        10 => {
            let base = r.u8()?;
            let n = r.u32()? as usize;
            r.ensure(n.saturating_mul(16))?;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(r.vec4()?);
            }
            StateCommand::VertexConstants { base, values }
        }
        11 => {
            let base = r.u8()?;
            let n = r.u32()? as usize;
            r.ensure(n.saturating_mul(16))?;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(r.vec4()?);
            }
            StateCommand::FragmentConstants { base, values }
        }
        t => return Err(CodecError::BadTag(t)),
    })
}

fn r_command(r: &mut Reader) -> Result<Command, CodecError> {
    Ok(match r.u8()? {
        0 => {
            let id = r.u32()?;
            let attributes = r.u8()?;
            let stride_bytes = r.u16()?;
            let n = r.u32()? as usize;
            r.ensure(n.saturating_mul(16))?;
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                data.push(r.vec4()?);
            }
            Command::CreateVertexBuffer {
                id,
                layout: VertexLayout { attributes, stride_bytes },
                data,
            }
        }
        1 => {
            let id = r.u32()?;
            let wide = r.u8()?;
            let n = r.u32()? as usize;
            let indices = match wide {
                0 => {
                    r.ensure(n.saturating_mul(2))?;
                    let mut v = Vec::with_capacity(n);
                    for _ in 0..n {
                        v.push(r.u16()?);
                    }
                    Indices::U16(v)
                }
                1 => {
                    r.ensure(n.saturating_mul(4))?;
                    let mut v = Vec::with_capacity(n);
                    for _ in 0..n {
                        v.push(r.u32()?);
                    }
                    Indices::U32(v)
                }
                t => return Err(CodecError::BadTag(t)),
            };
            Command::CreateIndexBuffer { id, indices }
        }
        2 => {
            let id = r.u32()?;
            let image = r_image(r)?;
            let format = r_fmt(r)?;
            let mipmaps = r.bool()?;
            let sampler = SamplerState { wrap: r_wrap(r)?, filter: r_filter(r)?, lod_bias: r.f32()? };
            Command::CreateTexture { id, image, format, mipmaps, sampler }
        }
        3 => Command::CreateProgram { id: r.u32()?, program: r_program(r)? },
        4 => Command::State(r_state(r)?),
        5 => Command::Clear {
            mask: ClearMask { color: r.bool()?, depth: r.bool()?, stencil: r.bool()? },
            color: r.vec4()?,
            depth: r.f32()?,
            stencil: r.u8()?,
        },
        6 => Command::Draw {
            vertex_buffer: r.u32()?,
            index_buffer: r.u32()?,
            primitive: r_prim(r)?,
            first: r.u32()?,
            count: r.u32()?,
        },
        7 => Command::EndFrame,
        t => return Err(CodecError::BadTag(t)),
    })
}

/// Encodes a bare command list (no trace header) — the payload format of
/// checkpoint resource sections.
pub fn encode_commands(commands: &[Command]) -> Vec<u8> {
    let mut w = Writer { buf: Vec::new() };
    w.u32(commands.len() as u32);
    for c in commands {
        w_command(&mut w, c);
    }
    w.buf
}

/// Decodes a command list produced by [`encode_commands`].
///
/// # Errors
///
/// Returns a [`CodecError`] on truncation or malformed records.
pub fn decode_commands(bytes: &[u8]) -> Result<Vec<Command>, CodecError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    let n = r.u32()? as usize;
    let mut commands = Vec::new();
    for _ in 0..n {
        commands.push(r_command(&mut r)?);
    }
    if !r.done() {
        return Err(CodecError::Truncated);
    }
    Ok(commands)
}

impl Trace {
    /// Serializes the trace to the compact binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer { buf: Vec::new() };
        w.buf.extend_from_slice(&MAGIC);
        w.u16(VERSION);
        w.u32(self.len() as u32);
        for c in self.commands() {
            w_command(&mut w, c);
        }
        w.buf
    }

    /// Decodes a trace previously produced by [`Trace::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on wrong magic/version, truncation, or
    /// malformed records.
    pub fn from_bytes(bytes: &[u8]) -> Result<Trace, CodecError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = r.u16()?;
        if version != VERSION {
            return Err(CodecError::BadVersion(version));
        }
        let n = r.u32()? as usize;
        let mut trace = Trace::new();
        for _ in 0..n {
            trace.push(r_command(&mut r)?);
        }
        if !r.done() {
            return Err(CodecError::Truncated);
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.push(Command::CreateVertexBuffer {
            id: 3,
            layout: VertexLayout::DOOM3,
            data: vec![Vec4::new(1.0, 2.0, 3.0, 1.0); 12],
        });
        t.push(Command::CreateIndexBuffer { id: 3, indices: Indices::U32(vec![0, 1, 1]) });
        t.push(Command::CreateTexture {
            id: 7,
            image: Image::checkerboard(8, 8, 2, [1, 2, 3, 4], [5, 6, 7, 8]),
            format: TexFormat::Dxt5,
            mipmaps: true,
            sampler: SamplerState {
                wrap: WrapMode::Mirror,
                filter: FilterMode::Anisotropic(8),
                lod_bias: -0.5,
            },
        });
        t.push(Command::CreateProgram {
            id: 1,
            program: gwc_shader::Program::new(
                ProgramKind::Fragment,
                "fp",
                vec![
                    Instr::tex(Reg::temp(0), Src::input(0).swiz(Swizzle::XXXX).neg(), 3),
                    Instr::kil(Src::temp(0)),
                    Instr::mov(Reg::out(0), Src::temp(0)).masked(WriteMask::XYZ),
                ],
            )
            .unwrap(),
        });
        t.push(Command::State(StateCommand::StencilFront(StencilState {
            test: true,
            func: CompareFunc::GreaterEqual,
            reference: 42,
            read_mask: 0x0f,
            fail: StencilOp::Invert,
            zfail: StencilOp::DecrWrap,
            pass: StencilOp::Replace,
        })));
        t.push(Command::State(StateCommand::VertexConstants {
            base: 4,
            values: vec![Vec4::splat(9.5)],
        }));
        t.push(Command::Clear {
            mask: ClearMask::DEPTH_STENCIL,
            color: Vec4::new(0.1, 0.2, 0.3, 0.4),
            depth: 0.5,
            stencil: 3,
        });
        t.push(Command::Draw {
            vertex_buffer: 3,
            index_buffer: 3,
            primitive: PrimitiveType::TriangleFan,
            first: 0,
            count: 3,
        });
        t.push(Command::EndFrame);
        t
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let t = sample_trace();
        let bytes = t.to_bytes();
        let decoded = Trace::from_bytes(&bytes).expect("decodes");
        assert_eq!(t, decoded);
    }

    #[test]
    fn header_checks() {
        assert_eq!(Trace::from_bytes(b"nope").unwrap_err(), CodecError::BadMagic);
        let mut bytes = sample_trace().to_bytes();
        bytes[4] = 0xff; // corrupt version
        assert!(matches!(Trace::from_bytes(&bytes).unwrap_err(), CodecError::BadVersion(_)));
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample_trace().to_bytes();
        for cut in [10, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                Trace::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample_trace().to_bytes();
        bytes.push(0);
        assert_eq!(Trace::from_bytes(&bytes).unwrap_err(), CodecError::Truncated);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new();
        assert_eq!(Trace::from_bytes(&t.to_bytes()).unwrap(), t);
    }

    #[test]
    fn all_state_commands_roundtrip() {
        let mut t = Trace::new();
        for s in [
            StateCommand::Depth(DepthState { test: false, write: true, func: CompareFunc::Never }),
            StateCommand::StencilBack(StencilState::default()),
            StateCommand::Cull(CullMode::Front),
            StateCommand::FrontFaceWinding(FrontFace::Cw),
            StateCommand::Blend(BlendState {
                enabled: true,
                src: BlendFactor::DstColor,
                dst: BlendFactor::SrcColor,
            }),
            StateCommand::ColorMask(false),
            StateCommand::AlphaTest { enabled: true, reference: 0.25 },
            StateCommand::BindTexture { unit: 9, texture: 1234 },
            StateCommand::BindPrograms { vertex: 1, fragment: 2 },
            StateCommand::FragmentConstants { base: 90, values: vec![Vec4::ONE; 3] },
        ] {
            t.push(Command::State(s));
        }
        assert_eq!(Trace::from_bytes(&t.to_bytes()).unwrap(), t);
    }
}
