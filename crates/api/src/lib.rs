//! A GL-flavoured graphics API layer with trace record/replay.
//!
//! The paper's methodology (Section II.B) is built on *API interception*:
//! GLInterceptor records every OpenGL call a game makes into a trace, a
//! player replays the trace bit-exactly, and statistics are computed from
//! the replayed stream — either at the API level directly or by feeding the
//! stream to the ATTILA simulator.
//!
//! This crate is that layer for the simulator workspace:
//!
//! - [`Command`] — the traced API vocabulary: resource creation, state
//!   changes, draw calls, frame boundaries.
//! - [`Device`] — the recording front-end games (here: synthetic workloads)
//!   call into; it validates commands, forwards them to an attached
//!   [`CommandSink`] and appends them to a [`Trace`].
//! - [`Trace`] — a replayable command stream (the GLInterceptor file).
//! - [`ApiStats`] — a sink that computes every API-level metric in the
//!   paper: batches and indices per frame (Table III, Figures 1–2), state
//!   calls per frame (Figure 3), primitive mix (Table V), and shader
//!   instruction statistics (Tables IV and XII, Figure 8).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod codec;
mod command;
mod device;
mod fault;
mod stats;
mod trace;

pub use codec::{decode_commands, encode_commands, CodecError};
pub use fault::FaultInjector;
pub use command::{ClearMask, Command, GraphicsApi, Indices, StateCommand, VertexLayout};
pub use device::{Device, DeviceError};
pub use stats::{ApiStats, FrameApiStats};
pub use trace::Trace;

/// Anything that can consume a replayed command stream: the statistics
/// collector, the GPU simulator, or both chained.
pub trait CommandSink {
    /// Consumes one command.
    fn consume(&mut self, command: &Command);
}

/// Replays commands into two sinks at once (e.g. stats + simulator).
#[derive(Debug)]
pub struct Tee<'a, A, B> {
    /// First sink.
    pub a: &'a mut A,
    /// Second sink.
    pub b: &'a mut B,
}

impl<A: CommandSink, B: CommandSink> CommandSink for Tee<'_, A, B> {
    fn consume(&mut self, command: &Command) {
        self.a.consume(command);
        self.b.consume(command);
    }
}
