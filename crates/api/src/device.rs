//! The recording device: validation + trace capture + live dispatch.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::command::{Command, StateCommand};
use crate::trace::Trace;
use crate::CommandSink;

/// Errors a [`Device`] reports for malformed command streams.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceError {
    /// A resource id was created twice.
    DuplicateId(&'static str, u32),
    /// A command referenced an id that was never created.
    UnknownId(&'static str, u32),
    /// A draw call's index range exceeds the bound index buffer.
    IndexRangeOutOfBounds {
        /// First index requested.
        first: u32,
        /// Count requested.
        count: u32,
        /// Actual buffer length.
        available: u32,
    },
    /// A draw call referenced a vertex beyond the vertex buffer.
    VertexOutOfBounds {
        /// The offending vertex index.
        index: u32,
        /// Vertices in the buffer.
        available: u32,
    },
    /// A vertex buffer's data length is not a multiple of its layout.
    MalformedVertexData,
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::DuplicateId(kind, id) => write!(f, "duplicate {kind} id {id}"),
            DeviceError::UnknownId(kind, id) => write!(f, "unknown {kind} id {id}"),
            DeviceError::IndexRangeOutOfBounds { first, count, available } => write!(
                f,
                "index range {first}..{} exceeds buffer of {available}",
                first + count
            ),
            DeviceError::VertexOutOfBounds { index, available } => {
                write!(f, "vertex index {index} exceeds buffer of {available} vertices")
            }
            DeviceError::MalformedVertexData => {
                write!(f, "vertex data length is not a multiple of the layout")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

/// The application-facing device: validates commands, records them into a
/// [`Trace`] and forwards them to an optional live sink.
///
/// This plays the role of the GL driver + GLInterceptor in the paper's
/// tool chain. Validation is strict ([C-VALIDATE]): invalid streams are
/// rejected at record time so traces are replayable by construction.
///
/// ```
/// use gwc_api::{Command, Device, Indices, VertexLayout};
/// use gwc_math::Vec4;
///
/// let mut dev = Device::new();
/// dev.submit(Command::CreateVertexBuffer {
///     id: 0,
///     layout: VertexLayout::POS_NORMAL_UV,
///     data: vec![Vec4::ZERO; 9],
/// })?;
/// dev.submit(Command::CreateIndexBuffer { id: 0, indices: Indices::U16(vec![0, 1, 2]) })?;
/// # Ok::<(), gwc_api::DeviceError>(())
/// ```
#[derive(Debug, Default)]
pub struct Device {
    trace: Trace,
    vertex_buffers: HashMap<u32, u32>, // id -> vertex count
    index_buffers: HashMap<u32, u32>,  // id -> index count, max index
    index_max: HashMap<u32, u32>,
    textures: HashMap<u32, ()>,
    programs: HashMap<u32, ()>,
}

impl Device {
    /// Creates an empty device.
    pub fn new() -> Self {
        Device::default()
    }

    /// Submits a command: validates, records, returns it for forwarding.
    ///
    /// # Errors
    ///
    /// Returns a [`DeviceError`] (and records nothing) when the command
    /// references unknown resources, redefines an id, or draws out of
    /// bounds.
    pub fn submit(&mut self, command: Command) -> Result<(), DeviceError> {
        self.validate(&command)?;
        self.trace.push(command);
        Ok(())
    }

    /// Submits a command and forwards it to a live sink.
    ///
    /// # Errors
    ///
    /// Same as [`Device::submit`].
    pub fn submit_to<S: CommandSink>(
        &mut self,
        command: Command,
        sink: &mut S,
    ) -> Result<(), DeviceError> {
        self.validate(&command)?;
        sink.consume(&command);
        self.trace.push(command);
        Ok(())
    }

    fn validate(&mut self, command: &Command) -> Result<(), DeviceError> {
        match command {
            Command::CreateVertexBuffer { id, layout, data } => {
                if self.vertex_buffers.contains_key(id) {
                    return Err(DeviceError::DuplicateId("vertex buffer", *id));
                }
                if layout.attributes == 0 || data.len() % layout.attributes as usize != 0 {
                    return Err(DeviceError::MalformedVertexData);
                }
                self.vertex_buffers.insert(*id, (data.len() / layout.attributes as usize) as u32);
            }
            Command::CreateIndexBuffer { id, indices } => {
                if self.index_buffers.contains_key(id) {
                    return Err(DeviceError::DuplicateId("index buffer", *id));
                }
                let max = (0..indices.len()).map(|i| indices.get(i)).max().unwrap_or(0);
                self.index_buffers.insert(*id, indices.len() as u32);
                self.index_max.insert(*id, max);
            }
            Command::CreateTexture { id, .. } => {
                if self.textures.contains_key(id) {
                    return Err(DeviceError::DuplicateId("texture", *id));
                }
                self.textures.insert(*id, ());
            }
            Command::CreateProgram { id, .. } => {
                if self.programs.contains_key(id) {
                    return Err(DeviceError::DuplicateId("program", *id));
                }
                self.programs.insert(*id, ());
            }
            Command::State(state) => match state {
                StateCommand::BindTexture { texture, .. }
                    if !self.textures.contains_key(texture) => {
                        return Err(DeviceError::UnknownId("texture", *texture));
                    }
                StateCommand::BindPrograms { vertex, fragment } => {
                    if !self.programs.contains_key(vertex) {
                        return Err(DeviceError::UnknownId("program", *vertex));
                    }
                    if !self.programs.contains_key(fragment) {
                        return Err(DeviceError::UnknownId("program", *fragment));
                    }
                }
                _ => {}
            },
            Command::Draw { vertex_buffer, index_buffer, first, count, .. } => {
                let &vcount = self
                    .vertex_buffers
                    .get(vertex_buffer)
                    .ok_or(DeviceError::UnknownId("vertex buffer", *vertex_buffer))?;
                let &icount = self
                    .index_buffers
                    .get(index_buffer)
                    .ok_or(DeviceError::UnknownId("index buffer", *index_buffer))?;
                if first.saturating_add(*count) > icount {
                    return Err(DeviceError::IndexRangeOutOfBounds {
                        first: *first,
                        count: *count,
                        available: icount,
                    });
                }
                let max = self.index_max[index_buffer];
                if max >= vcount {
                    return Err(DeviceError::VertexOutOfBounds { index: max, available: vcount });
                }
            }
            Command::Clear { .. } | Command::EndFrame => {}
        }
        Ok(())
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the device, returning the recorded trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{Indices, VertexLayout};
    use gwc_math::Vec4;
    use gwc_raster::PrimitiveType;

    fn vb(id: u32, verts: usize) -> Command {
        Command::CreateVertexBuffer {
            id,
            layout: VertexLayout::POS_NORMAL_UV,
            data: vec![Vec4::ZERO; verts * 3],
        }
    }

    fn ib(id: u32, indices: Vec<u16>) -> Command {
        Command::CreateIndexBuffer { id, indices: Indices::U16(indices) }
    }

    fn draw(vbuf: u32, ibuf: u32, first: u32, count: u32) -> Command {
        Command::Draw {
            vertex_buffer: vbuf,
            index_buffer: ibuf,
            primitive: PrimitiveType::TriangleList,
            first,
            count,
        }
    }

    #[test]
    fn valid_stream_records() {
        let mut d = Device::new();
        d.submit(vb(0, 3)).unwrap();
        d.submit(ib(0, vec![0, 1, 2])).unwrap();
        d.submit(draw(0, 0, 0, 3)).unwrap();
        d.submit(Command::EndFrame).unwrap();
        assert_eq!(d.trace().len(), 4);
        assert_eq!(d.trace().frame_count(), 1);
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut d = Device::new();
        d.submit(vb(0, 3)).unwrap();
        assert_eq!(d.submit(vb(0, 3)).unwrap_err(), DeviceError::DuplicateId("vertex buffer", 0));
    }

    #[test]
    fn unknown_buffer_rejected() {
        let mut d = Device::new();
        d.submit(vb(0, 3)).unwrap();
        assert_eq!(
            d.submit(draw(0, 9, 0, 3)).unwrap_err(),
            DeviceError::UnknownId("index buffer", 9)
        );
    }

    #[test]
    fn out_of_range_draw_rejected() {
        let mut d = Device::new();
        d.submit(vb(0, 3)).unwrap();
        d.submit(ib(0, vec![0, 1, 2])).unwrap();
        let err = d.submit(draw(0, 0, 1, 3)).unwrap_err();
        assert!(matches!(err, DeviceError::IndexRangeOutOfBounds { .. }));
    }

    #[test]
    fn dangling_index_rejected() {
        let mut d = Device::new();
        d.submit(vb(0, 3)).unwrap();
        d.submit(ib(0, vec![0, 1, 7])).unwrap(); // index 7 > 2
        let err = d.submit(draw(0, 0, 0, 3)).unwrap_err();
        assert!(matches!(err, DeviceError::VertexOutOfBounds { index: 7, available: 3 }));
    }

    #[test]
    fn malformed_vertex_data_rejected() {
        let mut d = Device::new();
        let cmd = Command::CreateVertexBuffer {
            id: 0,
            layout: VertexLayout::POS_NORMAL_UV,
            data: vec![Vec4::ZERO; 4], // not a multiple of 3
        };
        assert_eq!(d.submit(cmd).unwrap_err(), DeviceError::MalformedVertexData);
    }

    #[test]
    fn rejected_commands_not_recorded() {
        let mut d = Device::new();
        let _ = d.submit(draw(0, 0, 0, 3));
        assert_eq!(d.trace().len(), 0);
    }

    #[test]
    fn binding_unknown_texture_rejected() {
        let mut d = Device::new();
        let err = d
            .submit(Command::State(StateCommand::BindTexture { unit: 0, texture: 5 }))
            .unwrap_err();
        assert_eq!(err, DeviceError::UnknownId("texture", 5));
    }

    #[test]
    fn live_sink_receives_commands() {
        struct Counter(u32);
        impl CommandSink for Counter {
            fn consume(&mut self, _c: &Command) {
                self.0 += 1;
            }
        }
        let mut d = Device::new();
        let mut sink = Counter(0);
        d.submit_to(vb(0, 3), &mut sink).unwrap();
        d.submit_to(Command::EndFrame, &mut sink).unwrap();
        assert_eq!(sink.0, 2);
    }
}
