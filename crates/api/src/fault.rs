//! Seeded fault injection for robustness testing.
//!
//! The soak harness (see `tests/soak.rs` at the workspace root) replays
//! every game profile through the simulator while this module corrupts the
//! command stream — both at the *byte* level (encoded traces, exercising
//! the codec's decode-bomb and truncation guards) and at the *structural*
//! level (decoded commands with scrambled ids, out-of-range counts, or
//! non-finite data, exercising the pipeline's typed error propagation).
//!
//! All randomness comes from a caller-provided seed via SplitMix64, so a
//! failing corruption pattern reproduces from the seed alone.

use crate::command::{Command, StateCommand};

/// A deterministic source of corruption for encoded blobs and decoded
/// command streams.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    state: u64,
}

impl FaultInjector {
    /// Creates an injector from a seed. Equal seeds produce equal fault
    /// patterns.
    pub fn new(seed: u64) -> Self {
        FaultInjector { state: seed }
    }

    /// SplitMix64 step.
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A coin that lands heads `rate_ppm` times per million flips.
    fn coin(&mut self, rate_ppm: u32) -> bool {
        self.next() % 1_000_000 < rate_ppm as u64
    }

    /// Flips one random bit per corrupted byte of `bytes`, corrupting each
    /// byte independently with probability `rate_ppm` / 1e6. Returns the
    /// number of bytes corrupted.
    pub fn corrupt_bytes(&mut self, bytes: &mut [u8], rate_ppm: u32) -> usize {
        let mut corrupted = 0;
        for b in bytes.iter_mut() {
            if self.coin(rate_ppm) {
                *b ^= 1 << (self.next() % 8);
                corrupted += 1;
            }
        }
        corrupted
    }

    /// Truncates `bytes` at a random offset (possibly to empty). Returns
    /// the new length.
    pub fn truncate(&mut self, bytes: &mut Vec<u8>) -> usize {
        if !bytes.is_empty() {
            let cut = (self.next() % bytes.len() as u64) as usize;
            bytes.truncate(cut);
        }
        bytes.len()
    }

    /// Drops whole records from a decoded command stream: each command is
    /// independently removed with probability `rate_ppm` / 1e6. `EndFrame`
    /// markers are never dropped, so the frame structure survives. Returns
    /// the number of commands removed.
    pub fn drop_commands(&mut self, commands: &mut Vec<Command>, rate_ppm: u32) -> usize {
        let before = commands.len();
        commands.retain(|c| matches!(c, Command::EndFrame) || !self.coin(rate_ppm));
        before - commands.len()
    }

    /// Structurally corrupts a decoded command stream in place: each
    /// command is independently hit with probability `rate_ppm` / 1e6 and
    /// mutated into a *well-formed but wrong* command — scrambled resource
    /// ids, inflated index ranges, out-of-range constant bases, non-finite
    /// vertex data. `EndFrame` markers are never touched, so the frame
    /// structure of the trace survives and a `SkipBatch` replay must still
    /// complete every frame. Returns the number of commands corrupted.
    pub fn corrupt_commands(&mut self, commands: &mut [Command], rate_ppm: u32) -> usize {
        let mut corrupted = 0;
        for c in commands.iter_mut() {
            if matches!(c, Command::EndFrame) || !self.coin(rate_ppm) {
                continue;
            }
            if self.corrupt_one(c) {
                corrupted += 1;
            }
        }
        corrupted
    }

    /// Mutates one command; returns `false` when the command has no
    /// interesting corruption (left intact).
    fn corrupt_one(&mut self, c: &mut Command) -> bool {
        match c {
            Command::Draw { vertex_buffer, index_buffer, first, count, .. } => {
                match self.next() % 4 {
                    0 => *vertex_buffer = 0xDEAD_0000 | (self.next() as u32 & 0xFFFF),
                    1 => *index_buffer = 0xDEAD_0000 | (self.next() as u32 & 0xFFFF),
                    2 => *count = count.saturating_mul(1000).max(1_000_000),
                    _ => *first = u32::MAX - (self.next() as u32 & 0xFF),
                }
                true
            }
            Command::State(StateCommand::BindTexture { texture, .. }) => {
                *texture = 0xDEAD_0000 | (self.next() as u32 & 0xFFFF);
                true
            }
            Command::State(StateCommand::BindPrograms { vertex, fragment }) => {
                if self.next() & 1 == 0 {
                    *vertex = 0xDEAD_0000 | (self.next() as u32 & 0xFFFF);
                } else {
                    *fragment = 0xDEAD_0000 | (self.next() as u32 & 0xFFFF);
                }
                true
            }
            Command::State(StateCommand::VertexConstants { base, .. })
            | Command::State(StateCommand::FragmentConstants { base, .. }) => {
                *base = 255;
                true
            }
            Command::CreateVertexBuffer { data, .. } => {
                if data.is_empty() {
                    return false;
                }
                let i = (self.next() % data.len() as u64) as usize;
                data[i].x = f32::NAN;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{Indices, VertexLayout};
    use gwc_raster::PrimitiveType;

    fn draw() -> Command {
        Command::Draw {
            vertex_buffer: 1,
            index_buffer: 2,
            primitive: PrimitiveType::TriangleList,
            first: 0,
            count: 3,
        }
    }

    #[test]
    fn deterministic_from_seed() {
        let mut blob_a = vec![0u8; 4096];
        let mut blob_b = vec![0u8; 4096];
        let na = FaultInjector::new(42).corrupt_bytes(&mut blob_a, 10_000);
        let nb = FaultInjector::new(42).corrupt_bytes(&mut blob_b, 10_000);
        assert_eq!(na, nb);
        assert_eq!(blob_a, blob_b);
        assert!(na > 0, "1% of 4096 bytes should hit");
    }

    #[test]
    fn different_seeds_differ() {
        let mut blob_a = vec![0u8; 4096];
        let mut blob_b = vec![0u8; 4096];
        FaultInjector::new(1).corrupt_bytes(&mut blob_a, 50_000);
        FaultInjector::new(2).corrupt_bytes(&mut blob_b, 50_000);
        assert_ne!(blob_a, blob_b);
    }

    #[test]
    fn zero_rate_is_a_no_op() {
        let mut blob = vec![7u8; 1024];
        assert_eq!(FaultInjector::new(9).corrupt_bytes(&mut blob, 0), 0);
        assert!(blob.iter().all(|&b| b == 7));
    }

    #[test]
    fn end_frame_is_never_corrupted() {
        let mut commands = vec![Command::EndFrame; 100];
        let n = FaultInjector::new(3).corrupt_commands(&mut commands, 1_000_000);
        assert_eq!(n, 0);
        assert!(commands.iter().all(|c| matches!(c, Command::EndFrame)));
    }

    #[test]
    fn full_rate_corrupts_every_draw() {
        let mut commands = vec![draw(); 50];
        let n = FaultInjector::new(7).corrupt_commands(&mut commands, 1_000_000);
        assert_eq!(n, 50);
        let originals = vec![draw(); 50];
        assert!(commands.iter().zip(&originals).all(|(a, b)| a != b));
    }

    #[test]
    fn corruption_is_structure_preserving() {
        let mut commands = vec![
            Command::CreateVertexBuffer {
                id: 1,
                layout: VertexLayout { attributes: 1, stride_bytes: 16 },
                data: vec![gwc_math::Vec4::new(1.0, 1.0, 1.0, 1.0); 8],
            },
            Command::CreateIndexBuffer { id: 2, indices: Indices::U16(vec![0, 1, 2]) },
            draw(),
            Command::EndFrame,
        ];
        FaultInjector::new(11).corrupt_commands(&mut commands, 1_000_000);
        // Frame structure intact: same count, EndFrame still last.
        assert_eq!(commands.len(), 4);
        assert!(matches!(commands[3], Command::EndFrame));
    }

    #[test]
    fn drop_preserves_frame_markers() {
        let mut commands = vec![draw(), Command::EndFrame, draw(), Command::EndFrame];
        let n = FaultInjector::new(13).drop_commands(&mut commands, 1_000_000);
        assert_eq!(n, 2, "all draws dropped at full rate");
        assert!(commands.iter().all(|c| matches!(c, Command::EndFrame)));
        assert_eq!(commands.len(), 2, "every EndFrame survives");
    }

    #[test]
    fn truncate_shrinks() {
        let mut blob = vec![1u8; 100];
        let n = FaultInjector::new(5).truncate(&mut blob);
        assert!(n < 100);
        assert_eq!(blob.len(), n);
    }
}
