//! API-level statistics: the paper's Tables III–V, XII and Figures 1–3, 8.

use std::collections::HashMap;

use gwc_raster::PrimitiveType;
use gwc_stats::TimeSeries;
use serde::{Deserialize, Serialize};

use crate::command::{Command, Indices};
use crate::CommandSink;

/// Raw per-frame counters, reset at every `EndFrame`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FrameApiStats {
    /// Draw calls this frame (Figure 1).
    pub batches: u64,
    /// Indices referenced this frame (Table III).
    pub indices: u64,
    /// Bytes of index data transferred (Figure 2).
    pub index_bytes: u64,
    /// State calls this frame (Figure 3).
    pub state_calls: u64,
    /// Primitives (triangles) assembled this frame (Table V).
    pub primitives: u64,
    /// Triangles drawn as lists / strips / fans.
    pub prims_by_type: [u64; 3],
    /// Σ(vertex program length × indices) — for index-weighted Table IV.
    pub vs_instr_weighted: f64,
    /// Σ(fragment program length) over batches — for Table XII / Figure 8.
    pub fs_instr_sum: f64,
    /// Σ(fragment texture instructions) over batches.
    pub fs_tex_sum: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct ProgramInfo {
    instructions: u32,
    texture_instructions: u32,
}

/// A [`CommandSink`] that computes every API-level metric of the paper.
///
/// Feed it a trace (or tee it alongside the simulator) and read the
/// per-frame series and whole-run averages.
///
/// ```
/// use gwc_api::{ApiStats, Command, CommandSink};
///
/// let mut stats = ApiStats::new();
/// stats.consume(&Command::EndFrame);
/// assert_eq!(stats.frames(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ApiStats {
    programs: HashMap<u32, (bool, ProgramInfo)>, // id -> (is_fragment, info)
    index_buffers: HashMap<u32, (u32, u64)>,     // id -> (bytes/idx, len)
    bound_vertex: Option<u32>,
    bound_fragment: Option<u32>,
    current: FrameApiStats,
    frames_done: u64,
    // Whole-run accumulators.
    total: FrameApiStats,
    // Per-frame series (the figures).
    batches_series: Vec<f64>,
    index_mb_series: Vec<f64>,
    state_calls_series: Vec<f64>,
    fs_instr_series: Vec<f64>,
    fs_tex_series: Vec<f64>,
    vs_instr_series: Vec<f64>,
}

impl ApiStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        ApiStats::default()
    }

    /// Completed frames.
    pub fn frames(&self) -> u64 {
        self.frames_done
    }

    /// Counters of the in-progress frame.
    pub fn current_frame(&self) -> &FrameApiStats {
        &self.current
    }

    /// Whole-run totals (sum over completed frames).
    pub fn totals(&self) -> &FrameApiStats {
        &self.total
    }

    /// Average indices per batch (Table III).
    pub fn avg_indices_per_batch(&self) -> f64 {
        if self.total.batches == 0 {
            0.0
        } else {
            self.total.indices as f64 / self.total.batches as f64
        }
    }

    /// Average indices per frame (Table III).
    pub fn avg_indices_per_frame(&self) -> f64 {
        if self.frames_done == 0 {
            0.0
        } else {
            self.total.indices as f64 / self.frames_done as f64
        }
    }

    /// Average index bytes per frame (Figure 2 / Table III bandwidth).
    pub fn avg_index_bytes_per_frame(&self) -> f64 {
        if self.frames_done == 0 {
            0.0
        } else {
            self.total.index_bytes as f64 / self.frames_done as f64
        }
    }

    /// Average primitives per frame (Table V).
    pub fn avg_primitives_per_frame(&self) -> f64 {
        if self.frames_done == 0 {
            0.0
        } else {
            self.total.primitives as f64 / self.frames_done as f64
        }
    }

    /// Primitive type shares `(list, strip, fan)` as fractions of all
    /// triangles (Table V).
    pub fn primitive_shares(&self) -> (f64, f64, f64) {
        let total: u64 = self.total.prims_by_type.iter().sum();
        if total == 0 {
            return (0.0, 0.0, 0.0);
        }
        let f = |i: usize| self.total.prims_by_type[i] as f64 / total as f64;
        (f(0), f(1), f(2))
    }

    /// Index-weighted average vertex program length (Table IV).
    pub fn avg_vertex_instructions(&self) -> f64 {
        if self.total.indices == 0 {
            0.0
        } else {
            self.total.vs_instr_weighted / self.total.indices as f64
        }
    }

    /// Batch-averaged fragment program length (Table XII).
    pub fn avg_fragment_instructions(&self) -> f64 {
        if self.total.batches == 0 {
            0.0
        } else {
            self.total.fs_instr_sum / self.total.batches as f64
        }
    }

    /// Batch-averaged fragment texture instructions (Table XII).
    pub fn avg_fragment_tex_instructions(&self) -> f64 {
        if self.total.batches == 0 {
            0.0
        } else {
            self.total.fs_tex_sum / self.total.batches as f64
        }
    }

    /// ALU-to-texture ratio (Table XII); infinite if no texture
    /// instructions were issued.
    pub fn alu_tex_ratio(&self) -> f64 {
        let tex = self.avg_fragment_tex_instructions();
        if tex == 0.0 {
            f64::INFINITY
        } else {
            (self.avg_fragment_instructions() - tex) / tex
        }
    }

    fn series(name: &str, data: &[f64]) -> TimeSeries {
        let mut s = TimeSeries::new(name);
        s.extend(data.iter().copied());
        s
    }

    /// Batches per frame (Figure 1).
    pub fn batches_per_frame(&self) -> TimeSeries {
        Self::series("batches/frame", &self.batches_series)
    }

    /// Index megabytes per frame (Figure 2).
    pub fn index_mb_per_frame(&self) -> TimeSeries {
        Self::series("index MB/frame", &self.index_mb_series)
    }

    /// State calls per frame (Figure 3).
    pub fn state_calls_per_frame(&self) -> TimeSeries {
        Self::series("state calls/frame", &self.state_calls_series)
    }

    /// Average fragment program length per frame (Figure 8).
    pub fn fs_instructions_per_frame(&self) -> TimeSeries {
        Self::series("fragment instructions", &self.fs_instr_series)
    }

    /// Average fragment texture instructions per frame (Figure 8).
    pub fn fs_tex_per_frame(&self) -> TimeSeries {
        Self::series("texture instructions", &self.fs_tex_series)
    }

    /// Index-weighted vertex program length per frame (Table IV's
    /// two-region split for Oblivion uses this).
    pub fn vs_instructions_per_frame(&self) -> TimeSeries {
        Self::series("vertex instructions", &self.vs_instr_series)
    }
}

impl CommandSink for ApiStats {
    fn consume(&mut self, command: &Command) {
        if command.is_state_call() {
            self.current.state_calls += 1;
        }
        match command {
            Command::CreateProgram { id, program } => {
                self.programs.insert(
                    *id,
                    (
                        program.kind() == gwc_shader::ProgramKind::Fragment,
                        ProgramInfo {
                            instructions: program.instruction_count() as u32,
                            texture_instructions: program.texture_count() as u32,
                        },
                    ),
                );
            }
            Command::CreateIndexBuffer { id, indices } => {
                let bpi = indices.bytes_per_index();
                self.index_buffers.insert(*id, (bpi, indices.len() as u64));
                // Index upload itself is start-up traffic; Table III counts
                // only per-frame draw traffic, so nothing else here.
                let _ = Indices::is_empty;
            }
            Command::State(state) => {
                use crate::command::StateCommand;
                if let StateCommand::BindPrograms { vertex, fragment } = state {
                    self.bound_vertex = Some(*vertex);
                    self.bound_fragment = Some(*fragment);
                }
            }
            Command::Draw { index_buffer, primitive, count, .. } => {
                self.current.batches += 1;
                self.current.indices += *count as u64;
                let bpi =
                    self.index_buffers.get(index_buffer).map(|&(b, _)| b).unwrap_or(2) as u64;
                self.current.index_bytes += bpi * *count as u64;
                let tris = primitive.triangle_count(*count as usize) as u64;
                self.current.primitives += tris;
                let slot = match primitive {
                    PrimitiveType::TriangleList => 0,
                    PrimitiveType::TriangleStrip => 1,
                    PrimitiveType::TriangleFan => 2,
                };
                self.current.prims_by_type[slot] += tris;
                if let Some((_, info)) =
                    self.bound_vertex.and_then(|id| self.programs.get(&id))
                {
                    self.current.vs_instr_weighted +=
                        info.instructions as f64 * *count as f64;
                }
                if let Some((_, info)) =
                    self.bound_fragment.and_then(|id| self.programs.get(&id))
                {
                    self.current.fs_instr_sum += info.instructions as f64;
                    self.current.fs_tex_sum += info.texture_instructions as f64;
                }
            }
            Command::EndFrame => {
                let f = self.current;
                self.batches_series.push(f.batches as f64);
                self.index_mb_series.push(f.index_bytes as f64 / (1024.0 * 1024.0));
                self.state_calls_series.push(f.state_calls as f64);
                let fs_avg = if f.batches == 0 { 0.0 } else { f.fs_instr_sum / f.batches as f64 };
                let fs_tex_avg = if f.batches == 0 { 0.0 } else { f.fs_tex_sum / f.batches as f64 };
                let vs_avg =
                    if f.indices == 0 { 0.0 } else { f.vs_instr_weighted / f.indices as f64 };
                self.fs_instr_series.push(fs_avg);
                self.fs_tex_series.push(fs_tex_avg);
                self.vs_instr_series.push(vs_avg);
                // Accumulate into totals.
                self.total.batches += f.batches;
                self.total.indices += f.indices;
                self.total.index_bytes += f.index_bytes;
                self.total.state_calls += f.state_calls;
                self.total.primitives += f.primitives;
                for i in 0..3 {
                    self.total.prims_by_type[i] += f.prims_by_type[i];
                }
                self.total.vs_instr_weighted += f.vs_instr_weighted;
                self.total.fs_instr_sum += f.fs_instr_sum;
                self.total.fs_tex_sum += f.fs_tex_sum;
                self.current = FrameApiStats::default();
                self.frames_done += 1;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{StateCommand, VertexLayout};
    use gwc_math::Vec4;
    use gwc_shader::{Instr, Program, ProgramKind, Reg, Src};

    fn vs(len: usize) -> Program {
        let instrs = vec![Instr::mov(Reg::out(0), Src::input(0)); len];
        Program::new(ProgramKind::Vertex, "vs", instrs).unwrap()
    }

    fn fs(alu: usize, tex: usize) -> Program {
        let mut instrs = Vec::new();
        for u in 0..tex {
            instrs.push(Instr::tex(Reg::temp(0), Src::input(0), u as u8 % 16));
        }
        for _ in 0..alu {
            instrs.push(Instr::mov(Reg::out(0), Src::temp(0)));
        }
        Program::new(ProgramKind::Fragment, "fs", instrs).unwrap()
    }

    fn setup(stats: &mut ApiStats) {
        stats.consume(&Command::CreateProgram { id: 0, program: vs(20) });
        stats.consume(&Command::CreateProgram { id: 1, program: fs(9, 3) });
        stats.consume(&Command::CreateIndexBuffer {
            id: 0,
            indices: Indices::U32((0..300).collect()),
        });
        stats.consume(&Command::CreateVertexBuffer {
            id: 0,
            layout: VertexLayout::POS_NORMAL_UV,
            data: vec![Vec4::ZERO; 3],
        });
        stats.consume(&Command::State(StateCommand::BindPrograms { vertex: 0, fragment: 1 }));
    }

    fn draw(count: u32, primitive: PrimitiveType) -> Command {
        Command::Draw { vertex_buffer: 0, index_buffer: 0, primitive, first: 0, count }
    }

    #[test]
    fn batches_and_indices_counted() {
        let mut s = ApiStats::new();
        setup(&mut s);
        s.consume(&draw(300, PrimitiveType::TriangleList));
        s.consume(&draw(150, PrimitiveType::TriangleList));
        s.consume(&Command::EndFrame);
        assert_eq!(s.frames(), 1);
        assert_eq!(s.totals().batches, 2);
        assert_eq!(s.totals().indices, 450);
        assert_eq!(s.avg_indices_per_batch(), 225.0);
        assert_eq!(s.avg_indices_per_frame(), 450.0);
        // 32-bit indices: 450 * 4 bytes.
        assert_eq!(s.totals().index_bytes, 1800);
    }

    #[test]
    fn primitive_shares() {
        let mut s = ApiStats::new();
        setup(&mut s);
        s.consume(&draw(300, PrimitiveType::TriangleList)); // 100 tris
        s.consume(&draw(102, PrimitiveType::TriangleStrip)); // 100 tris
        s.consume(&Command::EndFrame);
        let (tl, ts, tf) = s.primitive_shares();
        assert!((tl - 0.5).abs() < 1e-12);
        assert!((ts - 0.5).abs() < 1e-12);
        assert_eq!(tf, 0.0);
        assert_eq!(s.avg_primitives_per_frame(), 200.0);
    }

    #[test]
    fn shader_averages() {
        let mut s = ApiStats::new();
        setup(&mut s);
        s.consume(&draw(300, PrimitiveType::TriangleList));
        s.consume(&Command::EndFrame);
        assert_eq!(s.avg_vertex_instructions(), 20.0);
        assert_eq!(s.avg_fragment_instructions(), 12.0);
        assert_eq!(s.avg_fragment_tex_instructions(), 3.0);
        assert_eq!(s.alu_tex_ratio(), 3.0);
    }

    #[test]
    fn state_calls_counted_per_frame() {
        let mut s = ApiStats::new();
        setup(&mut s); // 4 creates + 1 bind = 5 state calls
        s.consume(&Command::EndFrame);
        s.consume(&Command::State(StateCommand::ColorMask(false)));
        s.consume(&Command::EndFrame);
        let series = s.state_calls_per_frame();
        assert_eq!(series.values(), &[5.0, 1.0]);
    }

    #[test]
    fn series_lengths_match_frames() {
        let mut s = ApiStats::new();
        setup(&mut s);
        for _ in 0..10 {
            s.consume(&draw(30, PrimitiveType::TriangleList));
            s.consume(&Command::EndFrame);
        }
        assert_eq!(s.batches_per_frame().len(), 10);
        assert_eq!(s.index_mb_per_frame().len(), 10);
        assert_eq!(s.fs_instructions_per_frame().len(), 10);
        assert!((s.batches_per_frame().mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_all_zero() {
        let s = ApiStats::new();
        assert_eq!(s.avg_indices_per_batch(), 0.0);
        assert_eq!(s.avg_vertex_instructions(), 0.0);
        assert_eq!(s.primitive_shares(), (0.0, 0.0, 0.0));
        assert!(s.alu_tex_ratio().is_infinite());
    }
}
