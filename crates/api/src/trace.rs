//! Replayable command traces.

use serde::{Deserialize, Serialize};

use crate::command::Command;
use crate::CommandSink;

/// A recorded command stream: the simulator-side equivalent of a
/// GLInterceptor trace file.
///
/// Traces replay bit-exactly into any [`CommandSink`] — "allowing to replay
/// exactly the same input several times", the property the paper's
/// methodology (after Dunwoody & Linton) is built on.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    commands: Vec<Command>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends a command.
    pub fn push(&mut self, command: Command) {
        self.commands.push(command);
    }

    /// Number of commands.
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// `true` when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// The commands.
    pub fn commands(&self) -> &[Command] {
        &self.commands
    }

    /// Mutable access to the commands (fault injection).
    pub fn commands_mut(&mut self) -> &mut [Command] {
        &mut self.commands
    }

    /// Number of complete frames (`EndFrame` markers).
    pub fn frame_count(&self) -> usize {
        self.commands.iter().filter(|c| matches!(c, Command::EndFrame)).count()
    }

    /// Number of draw calls.
    pub fn draw_count(&self) -> usize {
        self.commands.iter().filter(|c| matches!(c, Command::Draw { .. })).count()
    }

    /// Replays the full trace into a sink.
    pub fn replay<S: CommandSink>(&self, sink: &mut S) {
        for c in &self.commands {
            sink.consume(c);
        }
    }

    /// Replays only the first `frames` frames (plus all preceding setup).
    pub fn replay_frames<S: CommandSink>(&self, frames: usize, sink: &mut S) {
        let mut done = 0;
        for c in &self.commands {
            sink.consume(c);
            if matches!(c, Command::EndFrame) {
                done += 1;
                if done >= frames {
                    break;
                }
            }
        }
    }

    /// Replays everything *after* the first `start_frame` frames — the
    /// complement of [`Trace::replay_frames`], used to resume a replay from
    /// a frame-boundary checkpoint.
    pub fn replay_from<S: CommandSink>(&self, start_frame: usize, sink: &mut S) {
        let mut done = 0;
        for c in &self.commands {
            if done >= start_frame {
                sink.consume(c);
            } else if matches!(c, Command::EndFrame) {
                done += 1;
            }
        }
    }
}

impl Extend<Command> for Trace {
    fn extend<T: IntoIterator<Item = Command>>(&mut self, iter: T) {
        self.commands.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gwc_math::Vec4;

    struct Collector(Vec<Command>);
    impl CommandSink for Collector {
        fn consume(&mut self, c: &Command) {
            self.0.push(c.clone());
        }
    }

    fn clear() -> Command {
        Command::Clear {
            mask: crate::ClearMask::ALL,
            color: Vec4::ZERO,
            depth: 1.0,
            stencil: 0,
        }
    }

    #[test]
    fn replay_preserves_order_and_content() {
        let mut t = Trace::new();
        t.push(clear());
        t.push(Command::EndFrame);
        t.push(clear());
        t.push(Command::EndFrame);
        let mut sink = Collector(Vec::new());
        t.replay(&mut sink);
        assert_eq!(sink.0.len(), 4);
        assert_eq!(sink.0, t.commands());
        assert_eq!(t.frame_count(), 2);
    }

    #[test]
    fn replay_frames_stops_at_boundary() {
        let mut t = Trace::new();
        for _ in 0..5 {
            t.push(clear());
            t.push(Command::EndFrame);
        }
        let mut sink = Collector(Vec::new());
        t.replay_frames(2, &mut sink);
        assert_eq!(sink.0.len(), 4);
    }

    #[test]
    fn counters() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.extend([clear(), Command::EndFrame]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.draw_count(), 0);
    }
}
