//! Minimal 3D graphics math for the GWC GPU simulator.
//!
//! This crate provides the small, allocation-free math vocabulary used by the
//! rest of the workspace: [`Vec2`], [`Vec3`], [`Vec4`], a column-major
//! [`Mat4`], [`Plane`], axis-aligned boxes ([`Aabb`]) and a view [`Frustum`].
//!
//! It is deliberately not a general-purpose linear algebra library — only the
//! operations a rendering pipeline needs (transforms, dot/cross products,
//! perspective projection, frustum classification) are implemented, but those
//! are implemented completely and tested.
//!
//! # Examples
//!
//! ```
//! use gwc_math::{Mat4, Vec3, Vec4};
//!
//! let proj = Mat4::perspective(60f32.to_radians(), 4.0 / 3.0, 0.1, 100.0);
//! let view = Mat4::look_at(
//!     Vec3::new(0.0, 0.0, 5.0),
//!     Vec3::ZERO,
//!     Vec3::new(0.0, 1.0, 0.0),
//! );
//! let clip = proj * view * Vec4::new(0.0, 0.0, 0.0, 1.0);
//! assert!(clip.w > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aabb;
mod frustum;
mod mat;
mod plane;
mod vec;

pub use aabb::Aabb;
pub use frustum::{Containment, Frustum};
pub use mat::Mat4;
pub use plane::Plane;
pub use vec::{Vec2, Vec3, Vec4};

/// Linear interpolation between `a` and `b` by factor `t` (not clamped).
///
/// ```
/// assert_eq!(gwc_math::lerp(0.0, 10.0, 0.25), 2.5);
/// ```
#[inline]
pub fn lerp(a: f32, b: f32, t: f32) -> f32 {
    a + (b - a) * t
}

/// Clamps `x` into `[lo, hi]`.
///
/// ```
/// assert_eq!(gwc_math::clamp(5.0, 0.0, 1.0), 1.0);
/// ```
#[inline]
pub fn clamp(x: f32, lo: f32, hi: f32) -> f32 {
    x.max(lo).min(hi)
}

/// Approximate float equality with absolute tolerance `eps`.
#[inline]
pub fn approx_eq(a: f32, b: f32, eps: f32) -> bool {
    (a - b).abs() <= eps
}
