//! Fixed-size float vectors used throughout the simulator.

use std::ops::{Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub,
               SubAssign};

use serde::{Deserialize, Serialize};

macro_rules! impl_binop {
    ($ty:ident, $($f:ident),+) => {
        impl Add for $ty {
            type Output = $ty;
            #[inline]
            fn add(self, rhs: $ty) -> $ty { $ty { $($f: self.$f + rhs.$f),+ } }
        }
        impl Sub for $ty {
            type Output = $ty;
            #[inline]
            fn sub(self, rhs: $ty) -> $ty { $ty { $($f: self.$f - rhs.$f),+ } }
        }
        impl Mul for $ty {
            type Output = $ty;
            #[inline]
            fn mul(self, rhs: $ty) -> $ty { $ty { $($f: self.$f * rhs.$f),+ } }
        }
        impl Mul<f32> for $ty {
            type Output = $ty;
            #[inline]
            fn mul(self, rhs: f32) -> $ty { $ty { $($f: self.$f * rhs),+ } }
        }
        impl Mul<$ty> for f32 {
            type Output = $ty;
            #[inline]
            fn mul(self, rhs: $ty) -> $ty { $ty { $($f: self * rhs.$f),+ } }
        }
        impl Div<f32> for $ty {
            type Output = $ty;
            #[inline]
            fn div(self, rhs: f32) -> $ty { $ty { $($f: self.$f / rhs),+ } }
        }
        impl Neg for $ty {
            type Output = $ty;
            #[inline]
            fn neg(self) -> $ty { $ty { $($f: -self.$f),+ } }
        }
        impl AddAssign for $ty {
            #[inline]
            fn add_assign(&mut self, rhs: $ty) { *self = *self + rhs; }
        }
        impl SubAssign for $ty {
            #[inline]
            fn sub_assign(&mut self, rhs: $ty) { *self = *self - rhs; }
        }
        impl MulAssign<f32> for $ty {
            #[inline]
            fn mul_assign(&mut self, rhs: f32) { *self = *self * rhs; }
        }
        impl DivAssign<f32> for $ty {
            #[inline]
            fn div_assign(&mut self, rhs: f32) { *self = *self / rhs; }
        }
    };
}

/// A 2-component float vector (texture coordinates, screen positions).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f32, y: f32) -> Self {
        Vec2 { x, y }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec2) -> f32 {
        self.x * rhs.x + self.y * rhs.y
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// 2D cross product (signed area of the parallelogram).
    #[inline]
    pub fn cross(self, rhs: Vec2) -> f32 {
        self.x * rhs.y - self.y * rhs.x
    }
}

impl_binop!(Vec2, x, y);

/// A 3-component float vector (positions, normals, colors).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    /// The all-ones vector.
    pub const ONE: Vec3 = Vec3 { x: 1.0, y: 1.0, z: 1.0 };
    /// Unit X axis.
    pub const X: Vec3 = Vec3 { x: 1.0, y: 0.0, z: 0.0 };
    /// Unit Y axis.
    pub const Y: Vec3 = Vec3 { x: 0.0, y: 1.0, z: 0.0 };
    /// Unit Z axis.
    pub const Z: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 1.0 };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f32 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product (right-handed).
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Returns the vector scaled to unit length. Returns `ZERO` for a
    /// zero-length input instead of producing NaNs.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        if len > 0.0 {
            self / len
        } else {
            Vec3::ZERO
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// Extends to a [`Vec4`] with the given `w`.
    #[inline]
    pub fn extend(self, w: f32) -> Vec4 {
        Vec4::new(self.x, self.y, self.z, w)
    }
}

impl_binop!(Vec3, x, y, z);

impl From<[f32; 3]> for Vec3 {
    #[inline]
    fn from(a: [f32; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f32; 3] {
    #[inline]
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

/// A 4-component float vector (homogeneous positions, RGBA colors, shader
/// registers).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec4 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
    /// W component.
    pub w: f32,
}

impl Vec4 {
    /// The zero vector.
    pub const ZERO: Vec4 = Vec4 { x: 0.0, y: 0.0, z: 0.0, w: 0.0 };
    /// The all-ones vector.
    pub const ONE: Vec4 = Vec4 { x: 1.0, y: 1.0, z: 1.0, w: 1.0 };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32, w: f32) -> Self {
        Vec4 { x, y, z, w }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Vec4 { x: v, y: v, z: v, w: v }
    }

    /// Dot product over all four components.
    #[inline]
    pub fn dot(self, rhs: Vec4) -> f32 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z + self.w * rhs.w
    }

    /// Dot product over the first three components.
    #[inline]
    pub fn dot3(self, rhs: Vec4) -> f32 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Truncates to the XYZ components.
    #[inline]
    pub fn xyz(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }

    /// Truncates to the XY components.
    #[inline]
    pub fn xy(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }

    /// Perspective division: `(x/w, y/w, z/w)`.
    ///
    /// # Panics
    ///
    /// Does not panic, but returns non-finite components when `w == 0`.
    #[inline]
    pub fn perspective_divide(self) -> Vec3 {
        Vec3::new(self.x / self.w, self.y / self.w, self.z / self.w)
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vec4) -> Vec4 {
        Vec4::new(
            self.x.min(rhs.x),
            self.y.min(rhs.y),
            self.z.min(rhs.z),
            self.w.min(rhs.w),
        )
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vec4) -> Vec4 {
        Vec4::new(
            self.x.max(rhs.x),
            self.y.max(rhs.y),
            self.z.max(rhs.z),
            self.w.max(rhs.w),
        )
    }

    /// Clamps all components into `[0, 1]`.
    #[inline]
    pub fn saturate(self) -> Vec4 {
        self.max(Vec4::ZERO).min(Vec4::ONE)
    }

    /// Linear interpolation between `self` and `rhs`.
    #[inline]
    pub fn lerp(self, rhs: Vec4, t: f32) -> Vec4 {
        self + (rhs - self) * t
    }
}

impl_binop!(Vec4, x, y, z, w);

impl Index<usize> for Vec4 {
    type Output = f32;

    /// Component access by index (0..4).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 4`.
    #[inline]
    fn index(&self, i: usize) -> &f32 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            3 => &self.w,
            _ => panic!("Vec4 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for Vec4 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            3 => &mut self.w,
            _ => panic!("Vec4 index out of range: {i}"),
        }
    }
}

impl From<[f32; 4]> for Vec4 {
    #[inline]
    fn from(a: [f32; 4]) -> Self {
        Vec4::new(a[0], a[1], a[2], a[3])
    }
}

impl From<Vec4> for [f32; 4] {
    #[inline]
    fn from(v: Vec4) -> Self {
        [v.x, v.y, v.z, v.w]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec3_basic_ops() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a.dot(b), 32.0);
    }

    #[test]
    fn vec3_cross_is_orthogonal() {
        let a = Vec3::new(1.0, 0.5, -0.25);
        let b = Vec3::new(-2.0, 1.0, 4.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-5);
        assert!(c.dot(b).abs() < 1e-5);
    }

    #[test]
    fn vec3_cross_right_handed() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn vec3_normalized_unit_length() {
        let v = Vec3::new(3.0, 4.0, 12.0).normalized();
        assert!((v.length() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn vec3_normalized_zero_is_zero() {
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn vec4_perspective_divide() {
        let v = Vec4::new(2.0, 4.0, 6.0, 2.0);
        assert_eq!(v.perspective_divide(), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn vec4_index_roundtrip() {
        let mut v = Vec4::new(1.0, 2.0, 3.0, 4.0);
        for i in 0..4 {
            v[i] += 1.0;
        }
        assert_eq!(v, Vec4::new(2.0, 3.0, 4.0, 5.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vec4_index_out_of_range_panics() {
        let v = Vec4::ZERO;
        let _ = v[4];
    }

    #[test]
    fn vec4_saturate_clamps() {
        let v = Vec4::new(-1.0, 0.5, 2.0, 1.0).saturate();
        assert_eq!(v, Vec4::new(0.0, 0.5, 1.0, 1.0));
    }

    #[test]
    fn vec2_cross_sign() {
        // CCW turn has positive cross product.
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        assert!(a.cross(b) > 0.0);
        assert!(b.cross(a) < 0.0);
    }

    #[test]
    fn array_conversions() {
        let v: Vec3 = [1.0, 2.0, 3.0].into();
        let a: [f32; 3] = v.into();
        assert_eq!(a, [1.0, 2.0, 3.0]);
        let v4: Vec4 = [1.0, 2.0, 3.0, 4.0].into();
        let a4: [f32; 4] = v4.into();
        assert_eq!(a4, [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn vec4_lerp_endpoints() {
        let a = Vec4::ZERO;
        let b = Vec4::ONE;
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec4::splat(0.5));
    }
}
