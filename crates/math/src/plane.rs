//! Oriented planes in 3D.

use serde::{Deserialize, Serialize};

use crate::{Vec3, Vec4};

/// A plane `n·p + d = 0`. Points with `signed_distance > 0` are on the side
/// the normal points toward (the "inside" for frustum planes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Plane {
    /// Plane normal (not necessarily unit length unless normalized).
    pub normal: Vec3,
    /// Plane offset.
    pub d: f32,
}

impl Plane {
    /// Creates a plane from a normal and offset.
    #[inline]
    pub const fn new(normal: Vec3, d: f32) -> Self {
        Plane { normal, d }
    }

    /// Creates a plane from homogeneous coefficients `(a, b, c, d)`.
    #[inline]
    pub fn from_coefficients(v: Vec4) -> Self {
        Plane { normal: v.xyz(), d: v.w }
    }

    /// Creates a plane through three points with normal given by the
    /// right-handed winding `(b - a) × (c - a)`.
    pub fn from_points(a: Vec3, b: Vec3, c: Vec3) -> Self {
        let normal = (b - a).cross(c - a).normalized();
        Plane { normal, d: -normal.dot(a) }
    }

    /// Returns a plane with unit-length normal (distance values become true
    /// Euclidean distances). Zero normals are returned unchanged.
    pub fn normalized(self) -> Plane {
        let len = self.normal.length();
        if len > 0.0 {
            Plane { normal: self.normal / len, d: self.d / len }
        } else {
            self
        }
    }

    /// Signed distance from `p` to the plane (scaled by `|normal|`).
    #[inline]
    pub fn signed_distance(&self, p: Vec3) -> f32 {
        self.normal.dot(p) + self.d
    }

    /// Evaluates the plane against a homogeneous point: `n·xyz + d·w`.
    #[inline]
    pub fn eval_homogeneous(&self, p: Vec4) -> f32 {
        self.normal.x * p.x + self.normal.y * p.y + self.normal.z * p.z + self.d * p.w
    }

    /// Intersection parameter `t` of the segment `a + t (b - a)` with the
    /// plane, or `None` if the segment is parallel to the plane.
    pub fn intersect_segment(&self, a: Vec3, b: Vec3) -> Option<f32> {
        let da = self.signed_distance(a);
        let db = self.signed_distance(b);
        let denom = da - db;
        if denom.abs() < 1e-12 {
            None
        } else {
            Some(da / denom)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_points_distance() {
        // XY plane through origin, normal +Z.
        let p = Plane::from_points(Vec3::ZERO, Vec3::X, Vec3::Y);
        assert!((p.normal - Vec3::Z).length() < 1e-6);
        assert!((p.signed_distance(Vec3::new(0.0, 0.0, 5.0)) - 5.0).abs() < 1e-6);
        assert!((p.signed_distance(Vec3::new(3.0, -2.0, -1.0)) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalized_preserves_zero_set() {
        let p = Plane::new(Vec3::new(0.0, 0.0, 4.0), -8.0); // z = 2
        let n = p.normalized();
        let on = Vec3::new(1.0, 1.0, 2.0);
        assert!(p.signed_distance(on).abs() < 1e-6);
        assert!(n.signed_distance(on).abs() < 1e-6);
        assert!((n.normal.length() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn segment_intersection_param() {
        let p = Plane::new(Vec3::Z, -1.0); // z = 1
        let t = p
            .intersect_segment(Vec3::ZERO, Vec3::new(0.0, 0.0, 2.0))
            .expect("crosses");
        assert!((t - 0.5).abs() < 1e-6);
    }

    #[test]
    fn parallel_segment_no_intersection() {
        let p = Plane::new(Vec3::Z, 0.0);
        assert!(p.intersect_segment(Vec3::X, Vec3::Y).is_none());
    }

    #[test]
    fn eval_homogeneous_matches_affine() {
        let p = Plane::new(Vec3::new(1.0, 2.0, 3.0), 4.0);
        let q = Vec3::new(0.5, -1.0, 2.0);
        assert!(
            (p.eval_homogeneous(q.extend(1.0)) - p.signed_distance(q)).abs() < 1e-6
        );
    }
}
