//! Column-major 4x4 matrix.

use std::ops::Mul;

use serde::{Deserialize, Serialize};

use crate::{Vec3, Vec4};

/// A column-major 4x4 matrix, matching the OpenGL convention used by the
/// simulated API layer.
///
/// `cols[c]` is column `c`; element *(row r, col c)* is `cols[c][r]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat4 {
    /// The four columns of the matrix.
    pub cols: [Vec4; 4],
}

impl Default for Mat4 {
    fn default() -> Self {
        Mat4::IDENTITY
    }
}

impl Mat4 {
    /// The identity matrix.
    pub const IDENTITY: Mat4 = Mat4 {
        cols: [
            Vec4::new(1.0, 0.0, 0.0, 0.0),
            Vec4::new(0.0, 1.0, 0.0, 0.0),
            Vec4::new(0.0, 0.0, 1.0, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        ],
    };

    /// Builds a matrix from four columns.
    #[inline]
    pub const fn from_cols(c0: Vec4, c1: Vec4, c2: Vec4, c3: Vec4) -> Self {
        Mat4 { cols: [c0, c1, c2, c3] }
    }

    /// Returns row `r` as a [`Vec4`].
    ///
    /// # Panics
    ///
    /// Panics if `r >= 4`.
    #[inline]
    pub fn row(&self, r: usize) -> Vec4 {
        Vec4::new(self.cols[0][r], self.cols[1][r], self.cols[2][r], self.cols[3][r])
    }

    /// Translation matrix.
    pub fn translation(t: Vec3) -> Mat4 {
        let mut m = Mat4::IDENTITY;
        m.cols[3] = Vec4::new(t.x, t.y, t.z, 1.0);
        m
    }

    /// Non-uniform scale matrix.
    pub fn scale(s: Vec3) -> Mat4 {
        Mat4::from_cols(
            Vec4::new(s.x, 0.0, 0.0, 0.0),
            Vec4::new(0.0, s.y, 0.0, 0.0),
            Vec4::new(0.0, 0.0, s.z, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Rotation about the X axis by `angle` radians.
    pub fn rotation_x(angle: f32) -> Mat4 {
        let (s, c) = angle.sin_cos();
        Mat4::from_cols(
            Vec4::new(1.0, 0.0, 0.0, 0.0),
            Vec4::new(0.0, c, s, 0.0),
            Vec4::new(0.0, -s, c, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Rotation about the Y axis by `angle` radians.
    pub fn rotation_y(angle: f32) -> Mat4 {
        let (s, c) = angle.sin_cos();
        Mat4::from_cols(
            Vec4::new(c, 0.0, -s, 0.0),
            Vec4::new(0.0, 1.0, 0.0, 0.0),
            Vec4::new(s, 0.0, c, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Rotation about the Z axis by `angle` radians.
    pub fn rotation_z(angle: f32) -> Mat4 {
        let (s, c) = angle.sin_cos();
        Mat4::from_cols(
            Vec4::new(c, s, 0.0, 0.0),
            Vec4::new(-s, c, 0.0, 0.0),
            Vec4::new(0.0, 0.0, 1.0, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Right-handed perspective projection with a `[-1, 1]` clip-space depth
    /// range (the OpenGL convention).
    ///
    /// `fovy` is the vertical field of view in radians; `near`/`far` are the
    /// positive distances to the clip planes.
    ///
    /// # Panics
    ///
    /// Panics if `near <= 0`, `far <= near`, `aspect <= 0` or
    /// `fovy` is not in `(0, π)`.
    pub fn perspective(fovy: f32, aspect: f32, near: f32, far: f32) -> Mat4 {
        assert!(near > 0.0 && far > near, "invalid near/far: {near}/{far}");
        assert!(aspect > 0.0, "invalid aspect: {aspect}");
        assert!(fovy > 0.0 && fovy < std::f32::consts::PI, "invalid fovy: {fovy}");
        let f = 1.0 / (fovy * 0.5).tan();
        let nf = 1.0 / (near - far);
        Mat4::from_cols(
            Vec4::new(f / aspect, 0.0, 0.0, 0.0),
            Vec4::new(0.0, f, 0.0, 0.0),
            Vec4::new(0.0, 0.0, (far + near) * nf, -1.0),
            Vec4::new(0.0, 0.0, 2.0 * far * near * nf, 0.0),
        )
    }

    /// Right-handed orthographic projection with `[-1, 1]` depth range.
    pub fn orthographic(left: f32, right: f32, bottom: f32, top: f32, near: f32, far: f32) -> Mat4 {
        let rl = 1.0 / (right - left);
        let tb = 1.0 / (top - bottom);
        let fne = 1.0 / (far - near);
        Mat4::from_cols(
            Vec4::new(2.0 * rl, 0.0, 0.0, 0.0),
            Vec4::new(0.0, 2.0 * tb, 0.0, 0.0),
            Vec4::new(0.0, 0.0, -2.0 * fne, 0.0),
            Vec4::new(
                -(right + left) * rl,
                -(top + bottom) * tb,
                -(far + near) * fne,
                1.0,
            ),
        )
    }

    /// Right-handed look-at view matrix.
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3) -> Mat4 {
        let f = (target - eye).normalized();
        let s = f.cross(up).normalized();
        let u = s.cross(f);
        Mat4::from_cols(
            Vec4::new(s.x, u.x, -f.x, 0.0),
            Vec4::new(s.y, u.y, -f.y, 0.0),
            Vec4::new(s.z, u.z, -f.z, 0.0),
            Vec4::new(-s.dot(eye), -u.dot(eye), f.dot(eye), 1.0),
        )
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Mat4 {
        Mat4::from_cols(self.row(0), self.row(1), self.row(2), self.row(3))
    }

    /// Transforms a point (`w = 1`).
    #[inline]
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        let v = *self * p.extend(1.0);
        v.xyz()
    }

    /// Transforms a direction (`w = 0`), ignoring translation.
    #[inline]
    pub fn transform_dir(&self, d: Vec3) -> Vec3 {
        let v = *self * d.extend(0.0);
        v.xyz()
    }

    /// General matrix inverse via cofactor expansion.
    ///
    /// Returns `None` when the matrix is singular (determinant within
    /// `1e-12` of zero).
    pub fn inverse(&self) -> Option<Mat4> {
        // Flatten to row-major m[r][c] for readability.
        let m = |r: usize, c: usize| self.cols[c][r];
        let a2323 = m(2, 2) * m(3, 3) - m(2, 3) * m(3, 2);
        let a1323 = m(2, 1) * m(3, 3) - m(2, 3) * m(3, 1);
        let a1223 = m(2, 1) * m(3, 2) - m(2, 2) * m(3, 1);
        let a0323 = m(2, 0) * m(3, 3) - m(2, 3) * m(3, 0);
        let a0223 = m(2, 0) * m(3, 2) - m(2, 2) * m(3, 0);
        let a0123 = m(2, 0) * m(3, 1) - m(2, 1) * m(3, 0);
        let a2313 = m(1, 2) * m(3, 3) - m(1, 3) * m(3, 2);
        let a1313 = m(1, 1) * m(3, 3) - m(1, 3) * m(3, 1);
        let a1213 = m(1, 1) * m(3, 2) - m(1, 2) * m(3, 1);
        let a2312 = m(1, 2) * m(2, 3) - m(1, 3) * m(2, 2);
        let a1312 = m(1, 1) * m(2, 3) - m(1, 3) * m(2, 1);
        let a1212 = m(1, 1) * m(2, 2) - m(1, 2) * m(2, 1);
        let a0313 = m(1, 0) * m(3, 3) - m(1, 3) * m(3, 0);
        let a0213 = m(1, 0) * m(3, 2) - m(1, 2) * m(3, 0);
        let a0312 = m(1, 0) * m(2, 3) - m(1, 3) * m(2, 0);
        let a0212 = m(1, 0) * m(2, 2) - m(1, 2) * m(2, 0);
        let a0113 = m(1, 0) * m(3, 1) - m(1, 1) * m(3, 0);
        let a0112 = m(1, 0) * m(2, 1) - m(1, 1) * m(2, 0);

        let det = m(0, 0) * (m(1, 1) * a2323 - m(1, 2) * a1323 + m(1, 3) * a1223)
            - m(0, 1) * (m(1, 0) * a2323 - m(1, 2) * a0323 + m(1, 3) * a0223)
            + m(0, 2) * (m(1, 0) * a1323 - m(1, 1) * a0323 + m(1, 3) * a0123)
            - m(0, 3) * (m(1, 0) * a1223 - m(1, 1) * a0223 + m(1, 2) * a0123);
        if det.abs() < 1e-12 {
            return None;
        }
        let inv_det = 1.0 / det;

        let r = |v: f32| v * inv_det;
        // inv[r][c]
        let out = [
            [
                r(m(1, 1) * a2323 - m(1, 2) * a1323 + m(1, 3) * a1223),
                r(-(m(0, 1) * a2323 - m(0, 2) * a1323 + m(0, 3) * a1223)),
                r(m(0, 1) * a2313 - m(0, 2) * a1313 + m(0, 3) * a1213),
                r(-(m(0, 1) * a2312 - m(0, 2) * a1312 + m(0, 3) * a1212)),
            ],
            [
                r(-(m(1, 0) * a2323 - m(1, 2) * a0323 + m(1, 3) * a0223)),
                r(m(0, 0) * a2323 - m(0, 2) * a0323 + m(0, 3) * a0223),
                r(-(m(0, 0) * a2313 - m(0, 2) * a0313 + m(0, 3) * a0213)),
                r(m(0, 0) * a2312 - m(0, 2) * a0312 + m(0, 3) * a0212),
            ],
            [
                r(m(1, 0) * a1323 - m(1, 1) * a0323 + m(1, 3) * a0123),
                r(-(m(0, 0) * a1323 - m(0, 1) * a0323 + m(0, 3) * a0123)),
                r(m(0, 0) * a1313 - m(0, 1) * a0313 + m(0, 3) * a0113),
                r(-(m(0, 0) * a1312 - m(0, 1) * a0312 + m(0, 3) * a0112)),
            ],
            [
                r(-(m(1, 0) * a1223 - m(1, 1) * a0223 + m(1, 2) * a0123)),
                r(m(0, 0) * a1223 - m(0, 1) * a0223 + m(0, 2) * a0123),
                r(-(m(0, 0) * a1213 - m(0, 1) * a0213 + m(0, 2) * a0113)),
                r(m(0, 0) * a1212 - m(0, 1) * a0212 + m(0, 2) * a0112),
            ],
        ];
        Some(Mat4::from_cols(
            Vec4::new(out[0][0], out[1][0], out[2][0], out[3][0]),
            Vec4::new(out[0][1], out[1][1], out[2][1], out[3][1]),
            Vec4::new(out[0][2], out[1][2], out[2][2], out[3][2]),
            Vec4::new(out[0][3], out[1][3], out[2][3], out[3][3]),
        ))
    }
}

impl Mul for Mat4 {
    type Output = Mat4;

    fn mul(self, rhs: Mat4) -> Mat4 {
        let mut cols = [Vec4::ZERO; 4];
        for (c, col) in cols.iter_mut().enumerate() {
            *col = self * rhs.cols[c];
        }
        Mat4 { cols }
    }
}

impl Mul<Vec4> for Mat4 {
    type Output = Vec4;

    #[inline]
    fn mul(self, v: Vec4) -> Vec4 {
        self.cols[0] * v.x + self.cols[1] * v.y + self.cols[2] * v.z + self.cols[3] * v.w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn mats_close(a: &Mat4, b: &Mat4, eps: f32) -> bool {
        (0..4).all(|c| {
            (0..4).all(|r| approx_eq(a.cols[c][r], b.cols[c][r], eps))
        })
    }

    #[test]
    fn identity_is_neutral() {
        let v = Vec4::new(1.0, -2.0, 3.0, 1.0);
        assert_eq!(Mat4::IDENTITY * v, v);
        let m = Mat4::translation(Vec3::new(1.0, 2.0, 3.0));
        assert!(mats_close(&(Mat4::IDENTITY * m), &m, 0.0));
        assert!(mats_close(&(m * Mat4::IDENTITY), &m, 0.0));
    }

    #[test]
    fn translation_moves_points_not_dirs() {
        let m = Mat4::translation(Vec3::new(5.0, 0.0, 0.0));
        assert_eq!(m.transform_point(Vec3::ZERO), Vec3::new(5.0, 0.0, 0.0));
        assert_eq!(m.transform_dir(Vec3::X), Vec3::X);
    }

    #[test]
    fn rotation_z_quarter_turn() {
        let m = Mat4::rotation_z(std::f32::consts::FRAC_PI_2);
        let v = m.transform_point(Vec3::X);
        assert!((v - Vec3::Y).length() < 1e-6);
    }

    #[test]
    fn matrix_multiply_composes() {
        let t = Mat4::translation(Vec3::new(1.0, 0.0, 0.0));
        let r = Mat4::rotation_z(std::f32::consts::FRAC_PI_2);
        // (t * r) applies rotation first, then translation.
        let p = (t * r).transform_point(Vec3::X);
        assert!((p - Vec3::new(1.0, 1.0, 0.0)).length() < 1e-6);
    }

    #[test]
    fn perspective_maps_near_and_far() {
        let m = Mat4::perspective(std::f32::consts::FRAC_PI_2, 1.0, 1.0, 100.0);
        let near = (m * Vec4::new(0.0, 0.0, -1.0, 1.0)).perspective_divide();
        let far = (m * Vec4::new(0.0, 0.0, -100.0, 1.0)).perspective_divide();
        assert!(approx_eq(near.z, -1.0, 1e-4), "near.z = {}", near.z);
        assert!(approx_eq(far.z, 1.0, 1e-4), "far.z = {}", far.z);
    }

    #[test]
    #[should_panic(expected = "invalid near/far")]
    fn perspective_rejects_bad_planes() {
        let _ = Mat4::perspective(1.0, 1.0, 10.0, 1.0);
    }

    #[test]
    fn look_at_centers_target() {
        let m = Mat4::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::Y);
        let p = m.transform_point(Vec3::ZERO);
        // Target should lie on the -Z axis in view space.
        assert!(p.x.abs() < 1e-6 && p.y.abs() < 1e-6);
        assert!(approx_eq(p.z, -5.0, 1e-5));
    }

    #[test]
    fn inverse_roundtrip() {
        let m = Mat4::translation(Vec3::new(1.0, 2.0, 3.0))
            * Mat4::rotation_y(0.7)
            * Mat4::scale(Vec3::new(2.0, 3.0, 0.5));
        let inv = m.inverse().expect("invertible");
        assert!(mats_close(&(m * inv), &Mat4::IDENTITY, 1e-5));
        assert!(mats_close(&(inv * m), &Mat4::IDENTITY, 1e-5));
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let m = Mat4::scale(Vec3::new(0.0, 1.0, 1.0));
        assert!(m.inverse().is_none());
    }

    #[test]
    fn transpose_involution() {
        let m = Mat4::perspective(1.0, 1.3, 0.5, 50.0);
        assert!(mats_close(&m.transpose().transpose(), &m, 0.0));
    }

    #[test]
    fn orthographic_maps_corners() {
        let m = Mat4::orthographic(0.0, 10.0, 0.0, 10.0, 1.0, 11.0);
        let p = (m * Vec4::new(0.0, 0.0, -1.0, 1.0)).perspective_divide();
        assert!(approx_eq(p.x, -1.0, 1e-6) && approx_eq(p.y, -1.0, 1e-6));
        assert!(approx_eq(p.z, -1.0, 1e-6));
        let q = (m * Vec4::new(10.0, 10.0, -11.0, 1.0)).perspective_divide();
        assert!(approx_eq(q.x, 1.0, 1e-6) && approx_eq(q.y, 1.0, 1e-6));
        assert!(approx_eq(q.z, 1.0, 1e-6));
    }
}
