//! View frustum extraction and classification.

use serde::{Deserialize, Serialize};

use crate::{Aabb, Mat4, Plane, Vec3, Vec4};

/// The result of classifying a volume against a [`Frustum`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Containment {
    /// Entirely outside at least one plane.
    Outside,
    /// Crosses at least one plane.
    Intersecting,
    /// Entirely inside all planes.
    Inside,
}

/// A view frustum as six inward-facing planes, extracted from a combined
/// projection-view matrix (Gribb–Hartmann method).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Frustum {
    /// Planes in order: left, right, bottom, top, near, far. Normals point
    /// inside the frustum.
    pub planes: [Plane; 6],
}

impl Frustum {
    /// Index of the near plane in [`Frustum::planes`].
    pub const NEAR: usize = 4;

    /// Extracts the six clip planes from a projection–view matrix
    /// (clip = m * world).
    pub fn from_matrix(m: &Mat4) -> Self {
        let r0 = m.row(0);
        let r1 = m.row(1);
        let r2 = m.row(2);
        let r3 = m.row(3);
        let p = |v: Vec4| Plane::from_coefficients(v).normalized();
        Frustum {
            planes: [
                p(r3 + r0), // left:   x > -w
                p(r3 - r0), // right:  x < w
                p(r3 + r1), // bottom: y > -w
                p(r3 - r1), // top:    y < w
                p(r3 + r2), // near:   z > -w
                p(r3 - r2), // far:    z < w
            ],
        }
    }

    /// Classifies a world-space point.
    pub fn contains_point(&self, p: Vec3) -> bool {
        self.planes.iter().all(|pl| pl.signed_distance(p) >= 0.0)
    }

    /// Classifies an axis-aligned box (conservative: may report
    /// `Intersecting` for boxes that are actually outside near frustum
    /// corners).
    pub fn classify_aabb(&self, b: &Aabb) -> Containment {
        if b.is_empty() {
            return Containment::Outside;
        }
        let mut inside_all = true;
        for pl in &self.planes {
            // p-vertex / n-vertex test.
            let pv = Vec3::new(
                if pl.normal.x >= 0.0 { b.max.x } else { b.min.x },
                if pl.normal.y >= 0.0 { b.max.y } else { b.min.y },
                if pl.normal.z >= 0.0 { b.max.z } else { b.min.z },
            );
            if pl.signed_distance(pv) < 0.0 {
                return Containment::Outside;
            }
            let nv = Vec3::new(
                if pl.normal.x >= 0.0 { b.min.x } else { b.max.x },
                if pl.normal.y >= 0.0 { b.min.y } else { b.max.y },
                if pl.normal.z >= 0.0 { b.min.z } else { b.max.z },
            );
            if pl.signed_distance(nv) < 0.0 {
                inside_all = false;
            }
        }
        if inside_all {
            Containment::Inside
        } else {
            Containment::Intersecting
        }
    }

    /// Classifies a triangle given by three homogeneous clip-space vertices
    /// against the canonical clip volume
    /// (`-w <= x,y,z <= w`). This is the test the clipper stage performs.
    ///
    /// Returns `Outside` when all three vertices are beyond one common
    /// plane (trivial reject), `Inside` when all vertices satisfy all six
    /// inequalities, `Intersecting` otherwise.
    pub fn classify_clip_triangle(v0: Vec4, v1: Vec4, v2: Vec4) -> Containment {
        // Outcode per vertex: bit i set if outside plane i.
        let outcode = |v: Vec4| -> u8 {
            let mut c = 0u8;
            if v.x < -v.w {
                c |= 1;
            }
            if v.x > v.w {
                c |= 2;
            }
            if v.y < -v.w {
                c |= 4;
            }
            if v.y > v.w {
                c |= 8;
            }
            if v.z < -v.w {
                c |= 16;
            }
            if v.z > v.w {
                c |= 32;
            }
            c
        };
        let (c0, c1, c2) = (outcode(v0), outcode(v1), outcode(v2));
        if c0 & c1 & c2 != 0 {
            Containment::Outside
        } else if c0 | c1 | c2 == 0 {
            Containment::Inside
        } else {
            Containment::Intersecting
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view_proj() -> Mat4 {
        Mat4::perspective(std::f32::consts::FRAC_PI_2, 1.0, 1.0, 100.0)
            * Mat4::look_at(Vec3::ZERO, -Vec3::Z, Vec3::Y)
    }

    #[test]
    fn point_in_front_is_inside() {
        let f = Frustum::from_matrix(&view_proj());
        assert!(f.contains_point(Vec3::new(0.0, 0.0, -10.0)));
        assert!(!f.contains_point(Vec3::new(0.0, 0.0, 10.0))); // behind camera
        assert!(!f.contains_point(Vec3::new(0.0, 0.0, -200.0))); // past far
        assert!(!f.contains_point(Vec3::new(50.0, 0.0, -10.0))); // way left/right
    }

    #[test]
    fn aabb_classification() {
        let f = Frustum::from_matrix(&view_proj());
        let inside = Aabb::new(Vec3::new(-1.0, -1.0, -11.0), Vec3::new(1.0, 1.0, -9.0));
        assert_eq!(f.classify_aabb(&inside), Containment::Inside);
        let outside = Aabb::new(Vec3::new(-1.0, -1.0, 9.0), Vec3::new(1.0, 1.0, 11.0));
        assert_eq!(f.classify_aabb(&outside), Containment::Outside);
        let straddle = Aabb::new(Vec3::new(-1.0, -1.0, -2.0), Vec3::new(1.0, 1.0, 2.0));
        assert_eq!(f.classify_aabb(&straddle), Containment::Intersecting);
        assert_eq!(f.classify_aabb(&Aabb::EMPTY), Containment::Outside);
    }

    #[test]
    fn clip_triangle_trivial_cases() {
        // Fully inside the canonical volume.
        let inside = Frustum::classify_clip_triangle(
            Vec4::new(0.0, 0.0, 0.0, 1.0),
            Vec4::new(0.5, 0.0, 0.0, 1.0),
            Vec4::new(0.0, 0.5, 0.0, 1.0),
        );
        assert_eq!(inside, Containment::Inside);
        // All vertices beyond +x.
        let outside = Frustum::classify_clip_triangle(
            Vec4::new(2.0, 0.0, 0.0, 1.0),
            Vec4::new(3.0, 0.0, 0.0, 1.0),
            Vec4::new(2.0, 1.0, 0.0, 1.0),
        );
        assert_eq!(outside, Containment::Outside);
        // Straddling +x.
        let straddle = Frustum::classify_clip_triangle(
            Vec4::new(0.0, 0.0, 0.0, 1.0),
            Vec4::new(3.0, 0.0, 0.0, 1.0),
            Vec4::new(0.0, 1.0, 0.0, 1.0),
        );
        assert_eq!(straddle, Containment::Intersecting);
    }

    #[test]
    fn clip_triangle_separate_planes_not_rejected() {
        // Vertices each outside a *different* plane: cannot trivially reject.
        let c = Frustum::classify_clip_triangle(
            Vec4::new(-2.0, 0.0, 0.0, 1.0),
            Vec4::new(2.0, 0.0, 0.0, 1.0),
            Vec4::new(0.0, 2.0, 0.0, 1.0),
        );
        assert_eq!(c, Containment::Intersecting);
    }

    #[test]
    fn matrix_frustum_agrees_with_clip_test() {
        let vp = view_proj();
        let f = Frustum::from_matrix(&vp);
        // Sample some points; world-space plane test must agree with the
        // canonical clip-volume inequality for w > 0.
        for &p in &[
            Vec3::new(0.0, 0.0, -50.0),
            Vec3::new(5.0, -3.0, -20.0),
            Vec3::new(30.0, 0.0, -20.0),
            Vec3::new(0.0, 0.0, -0.5),
        ] {
            let clip = vp * p.extend(1.0);
            let in_clip = clip.x >= -clip.w
                && clip.x <= clip.w
                && clip.y >= -clip.w
                && clip.y <= clip.w
                && clip.z >= -clip.w
                && clip.z <= clip.w;
            assert_eq!(f.contains_point(p), in_clip, "disagreement at {p:?}");
        }
    }
}
