//! Axis-aligned bounding boxes.

use serde::{Deserialize, Serialize};

use crate::Vec3;

/// An axis-aligned bounding box, stored as min/max corners.
///
/// An *empty* box (the [`Default`] / [`Aabb::EMPTY`] value) has
/// `min > max` in every axis and absorbs nothing when intersected,
/// everything when unioned.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Default for Aabb {
    fn default() -> Self {
        Aabb::EMPTY
    }
}

impl Aabb {
    /// The empty box: unioning it with any point yields that point's box.
    pub const EMPTY: Aabb = Aabb {
        min: Vec3 { x: f32::INFINITY, y: f32::INFINITY, z: f32::INFINITY },
        max: Vec3 { x: f32::NEG_INFINITY, y: f32::NEG_INFINITY, z: f32::NEG_INFINITY },
    };

    /// Creates a box from corners. The corners are sorted per-axis, so the
    /// arguments need not be ordered.
    pub fn new(a: Vec3, b: Vec3) -> Self {
        Aabb { min: a.min(b), max: a.max(b) }
    }

    /// Builds the bounding box of an iterator of points.
    pub fn from_points<I: IntoIterator<Item = Vec3>>(points: I) -> Self {
        let mut b = Aabb::EMPTY;
        for p in points {
            b.expand(p);
        }
        b
    }

    /// Returns `true` for the empty box.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// Grows the box to contain `p`.
    #[inline]
    pub fn expand(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Union of two boxes.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb { min: self.min.min(other.min), max: self.max.max(other.max) }
    }

    /// Center point.
    ///
    /// Meaningless for an empty box (returns NaN components).
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Per-axis extent (`max - min`).
    #[inline]
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    /// Whether the point lies inside or on the boundary.
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// The eight corner points (undefined content for empty boxes).
    pub fn corners(&self) -> [Vec3; 8] {
        let (mn, mx) = (self.min, self.max);
        [
            Vec3::new(mn.x, mn.y, mn.z),
            Vec3::new(mx.x, mn.y, mn.z),
            Vec3::new(mn.x, mx.y, mn.z),
            Vec3::new(mx.x, mx.y, mn.z),
            Vec3::new(mn.x, mn.y, mx.z),
            Vec3::new(mx.x, mn.y, mx.z),
            Vec3::new(mn.x, mx.y, mx.z),
            Vec3::new(mx.x, mx.y, mx.z),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_box_absorbs_points() {
        let mut b = Aabb::EMPTY;
        assert!(b.is_empty());
        b.expand(Vec3::new(1.0, 2.0, 3.0));
        assert!(!b.is_empty());
        assert_eq!(b.min, b.max);
    }

    #[test]
    fn new_sorts_corners() {
        let b = Aabb::new(Vec3::new(1.0, -1.0, 5.0), Vec3::new(-1.0, 1.0, 0.0));
        assert_eq!(b.min, Vec3::new(-1.0, -1.0, 0.0));
        assert_eq!(b.max, Vec3::new(1.0, 1.0, 5.0));
    }

    #[test]
    fn contains_boundary() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        assert!(b.contains(Vec3::ZERO));
        assert!(b.contains(Vec3::ONE));
        assert!(b.contains(Vec3::splat(0.5)));
        assert!(!b.contains(Vec3::new(1.1, 0.5, 0.5)));
    }

    #[test]
    fn from_points_bounds_all() {
        let pts = [
            Vec3::new(1.0, 5.0, -3.0),
            Vec3::new(-2.0, 0.0, 4.0),
            Vec3::new(0.0, 1.0, 0.0),
        ];
        let b = Aabb::from_points(pts);
        for p in pts {
            assert!(b.contains(p));
        }
        assert_eq!(b.min, Vec3::new(-2.0, 0.0, -3.0));
        assert_eq!(b.max, Vec3::new(1.0, 5.0, 4.0));
    }

    #[test]
    fn union_covers_both() {
        let a = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let b = Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0));
        let u = a.union(&b);
        assert!(u.contains(Vec3::ZERO));
        assert!(u.contains(Vec3::splat(3.0)));
    }

    #[test]
    fn corners_are_contained() {
        let b = Aabb::new(Vec3::new(-1.0, 0.0, 2.0), Vec3::new(4.0, 2.0, 6.0));
        for c in b.corners() {
            assert!(b.contains(c));
        }
    }
}
