//! Property-based tests for the math substrate.

use gwc_math::{Aabb, Frustum, Mat4, Plane, Vec3, Vec4};
use proptest::prelude::*;

fn finite_f32(range: std::ops::Range<f32>) -> impl Strategy<Value = f32> {
    range.prop_filter("finite", |x| x.is_finite())
}

fn vec3_in(lo: f32, hi: f32) -> impl Strategy<Value = Vec3> {
    (finite_f32(lo..hi), finite_f32(lo..hi), finite_f32(lo..hi))
        .prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #[test]
    fn dot_is_commutative(a in vec3_in(-100.0, 100.0), b in vec3_in(-100.0, 100.0)) {
        prop_assert!((a.dot(b) - b.dot(a)).abs() < 1e-3);
    }

    #[test]
    fn cross_is_antisymmetric(a in vec3_in(-100.0, 100.0), b in vec3_in(-100.0, 100.0)) {
        let c = a.cross(b) + b.cross(a);
        prop_assert!(c.length() < 1e-2);
    }

    #[test]
    fn cross_orthogonal_to_inputs(a in vec3_in(-10.0, 10.0), b in vec3_in(-10.0, 10.0)) {
        let c = a.cross(b);
        // |a x b . a| <= eps * |a||b||a| scale
        let scale = (a.length() * b.length() * a.length()).max(1.0);
        prop_assert!(c.dot(a).abs() / scale < 1e-4);
    }

    #[test]
    fn normalized_is_unit_or_zero(a in vec3_in(-100.0, 100.0)) {
        let n = a.normalized();
        let len = n.length();
        prop_assert!(len == 0.0 || (len - 1.0).abs() < 1e-4);
    }

    #[test]
    fn mat_vec_distributes(
        t in vec3_in(-10.0, 10.0),
        angle in finite_f32(-3.0..3.0),
        a in vec3_in(-10.0, 10.0),
        b in vec3_in(-10.0, 10.0),
    ) {
        let m = Mat4::translation(t) * Mat4::rotation_y(angle);
        let lhs = m * (a.extend(1.0) + b.extend(0.0));
        let rhs = (m * a.extend(1.0)) + (m * b.extend(0.0));
        prop_assert!((lhs - rhs).dot(lhs - rhs) < 1e-3);
    }

    #[test]
    fn inverse_roundtrips_points(
        t in vec3_in(-10.0, 10.0),
        angle in finite_f32(-3.0..3.0),
        s in finite_f32(0.1..4.0),
        p in vec3_in(-10.0, 10.0),
    ) {
        let m = Mat4::translation(t) * Mat4::rotation_x(angle) * Mat4::scale(Vec3::splat(s));
        let inv = m.inverse().unwrap();
        let q = inv.transform_point(m.transform_point(p));
        prop_assert!((q - p).length() < 1e-2);
    }

    #[test]
    fn aabb_from_points_contains_all(pts in prop::collection::vec(vec3_in(-50.0, 50.0), 1..20)) {
        let b = Aabb::from_points(pts.iter().copied());
        for p in pts {
            prop_assert!(b.contains(p));
        }
    }

    #[test]
    fn aabb_union_contains_operands(
        a0 in vec3_in(-50.0, 50.0), a1 in vec3_in(-50.0, 50.0),
        b0 in vec3_in(-50.0, 50.0), b1 in vec3_in(-50.0, 50.0),
    ) {
        let a = Aabb::new(a0, a1);
        let b = Aabb::new(b0, b1);
        let u = a.union(&b);
        for c in a.corners().into_iter().chain(b.corners()) {
            prop_assert!(u.contains(c));
        }
    }

    #[test]
    fn plane_from_points_contains_points(
        a in vec3_in(-10.0, 10.0),
        b in vec3_in(-10.0, 10.0),
        c in vec3_in(-10.0, 10.0),
    ) {
        let area2 = (b - a).cross(c - a).length();
        prop_assume!(area2 > 1e-2); // skip degenerate triangles
        let pl = Plane::from_points(a, b, c);
        prop_assert!(pl.signed_distance(a).abs() < 1e-2);
        prop_assert!(pl.signed_distance(b).abs() < 1e-2);
        prop_assert!(pl.signed_distance(c).abs() < 1e-2);
    }

    #[test]
    fn frustum_point_matches_clip_volume(p in vec3_in(-120.0, 120.0)) {
        let vp = Mat4::perspective(1.2, 1.333, 0.5, 100.0)
            * Mat4::look_at(Vec3::new(0.0, 2.0, 10.0), Vec3::ZERO, Vec3::Y);
        let f = Frustum::from_matrix(&vp);
        let clip = vp * p.extend(1.0);
        // Only compare where w is comfortably positive (the plane form and
        // the inequality form differ for w <= 0).
        prop_assume!(clip.w > 1e-3);
        let in_clip = clip.x >= -clip.w && clip.x <= clip.w
            && clip.y >= -clip.w && clip.y <= clip.w
            && clip.z >= -clip.w && clip.z <= clip.w;
        // Allow disagreement only within a small band around the boundary.
        let margin: f32 = [
            clip.x + clip.w, clip.w - clip.x,
            clip.y + clip.w, clip.w - clip.y,
            clip.z + clip.w, clip.w - clip.z,
        ].into_iter().fold(f32::INFINITY, f32::min);
        prop_assume!(margin.abs() > 1e-3 * clip.w.max(1.0));
        prop_assert_eq!(f.contains_point(p), in_clip);
    }

    #[test]
    fn clip_classify_never_rejects_contained_vertex(
        v0 in vec3_in(-0.9, 0.9),
        v1 in vec3_in(-5.0, 5.0),
        v2 in vec3_in(-5.0, 5.0),
    ) {
        // v0 is strictly inside, so the triangle can never be Outside.
        use gwc_math::Containment;
        let c = Frustum::classify_clip_triangle(
            Vec4::new(v0.x, v0.y, v0.z, 1.0),
            Vec4::new(v1.x, v1.y, v1.z, 1.0),
            Vec4::new(v2.x, v2.y, v2.z, 1.0),
        );
        prop_assert!(c != Containment::Outside);
    }
}
