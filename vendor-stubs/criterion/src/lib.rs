//! Wall-clock micro-benchmark harness exposing the criterion API shape
//! the workspace's benches use: `criterion_group!`/`criterion_main!`,
//! `benchmark_group`, `sample_size`, `bench_function`, `Bencher::iter`.
//!
//! Reports mean wall-clock time per iteration; no statistics engine, no
//! HTML reports, no CLI filtering.

use std::time::Instant;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), samples: 20 }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, 20, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (timed repetitions per benchmark).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id.into()), self.samples, f);
        self
    }

    /// Ends the group (upstream flushes reports here; the stub prints as
    /// it goes).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    samples: usize,
    mean_ns: f64,
}

impl Bencher {
    /// Times `f`, recording the mean over the configured samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then `samples` timed calls.
        let _ = f();
        let start = Instant::now();
        for _ in 0..self.samples {
            let _ = f();
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.samples as f64;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut b = Bencher { samples: samples.max(1), mean_ns: 0.0 };
    f(&mut b);
    let (value, unit) = if b.mean_ns >= 1e9 {
        (b.mean_ns / 1e9, "s")
    } else if b.mean_ns >= 1e6 {
        (b.mean_ns / 1e6, "ms")
    } else if b.mean_ns >= 1e3 {
        (b.mean_ns / 1e3, "µs")
    } else {
        (b.mean_ns, "ns")
    };
    println!("{id:<48} time: {value:.3} {unit}/iter ({} samples)", b.samples);
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
