//! Marker-trait facade for serde.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` as declarative
//! metadata only; no serializer ever runs. Blanket impls make every type
//! satisfy the traits, and the derives (re-exported from `serde_derive`)
//! expand to nothing.

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
