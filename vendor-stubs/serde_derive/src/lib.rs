//! No-op `Serialize`/`Deserialize` derives.
//!
//! The workspace only ever *derives* the serde traits — nothing is
//! serialized — so the derives can expand to nothing. The `serde`
//! helper attribute is accepted (and ignored) for compatibility.

use proc_macro::TokenStream;

/// Expands to nothing; the marker trait in the `serde` stub has a blanket
/// impl, so deriving is purely cosmetic.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; see [`derive_serialize`].
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
