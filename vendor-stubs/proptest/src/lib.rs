//! A deterministic property-test runner covering the subset of the
//! `proptest` API this workspace uses.
//!
//! Differences from upstream: no shrinking (failures report the case
//! index and message), rejection via `prop_assume!` skips the case rather
//! than resampling, and generation is driven by a SplitMix64 stream
//! seeded from the test's module path so runs are reproducible.

pub mod test_runner {
    /// Per-test configuration; only `cases` is modelled.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The deterministic generation stream (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from a test identifier (FNV-1a of the name),
        /// so every run of a given test sees the same cases.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A value generator. Upstream strategies build shrinkable value
    /// trees; this stub only ever needs fresh values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keeps only values accepted by `f`, resampling on rejection.
        fn prop_filter<R: Into<String>, F: Fn(&Self::Value) -> bool>(
            self,
            whence: R,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, whence: whence.into(), f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) whence: String,
        pub(crate) f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1024 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1024 consecutive values: {}", self.whence);
        }
    }

    macro_rules! impl_range_int {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "empty integer range strategy");
                    (lo + rng.below((hi - lo) as u64) as i128) as $t
                }
            }
        )*};
    }
    impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_float {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as f64;
                    let hi = self.end as f64;
                    assert!(lo < hi, "empty float range strategy");
                    (lo + rng.unit_f64() * (hi - lo)) as $t
                }
            }
        )*};
    }
    impl_range_float!(f32, f64);

    macro_rules! impl_tuple {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple!(A.0);
    impl_tuple!(A.0, B.1);
    impl_tuple!(A.0, B.1, C.2);
    impl_tuple!(A.0, B.1, C.2, D.3);
    impl_tuple!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple!(A.0, B.1, C.2, D.3, E.4, F.5);
    impl_tuple!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    impl_tuple!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Full-range strategy for a primitive type (see [`any`]).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// The `any::<T>()` entry point: uniform over `T`'s whole domain.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count bound for [`vec`]: an exact size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy for `Vec`s of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + if span > 1 { rng.below(span) as usize } else { 0 };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy drawing uniformly from a fixed set of values.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select() needs at least one item");
        Select { items }
    }

    /// See [`select`].
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }
}

/// Everything a property-test file needs, mirroring upstream's prelude.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, `prop::sample::select`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// `assert!` that fails the property (with context) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        // `if cond {} else` rather than `if !cond`: negating a float
        // comparison trips clippy::neg_cmp_op_on_partial_ord at call sites.
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` flavour of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// `assert_ne!` flavour of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Skips the case when the assumption does not hold (upstream resamples;
/// the stub just accepts the case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in -1.5f32..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.5..2.5).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn exact_vec_len(v in prop::collection::vec(any::<bool>(), 7)) {
            prop_assert_eq!(v.len(), 7);
        }

        #[test]
        fn map_filter_compose(
            x in (0u32..100).prop_map(|v| v * 2).prop_filter("nonzero", |v| *v > 0),
        ) {
            prop_assert!(x % 2 == 0 && x > 0);
        }

        #[test]
        fn select_draws_member(x in prop::sample::select(vec![1, 5, 9])) {
            prop_assert!(x == 1 || x == 5 || x == 9);
        }

        #[test]
        fn tuples_generate(t in (any::<u8>(), 0usize..4, -1.0f64..1.0)) {
            prop_assert!(t.1 < 4);
            prop_assert!(t.2.abs() <= 1.0);
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("same-name");
        let mut b = TestRng::deterministic("same-name");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
