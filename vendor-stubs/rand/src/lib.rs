//! A tiny subset of the `rand` 0.8 API backed by SplitMix64.
//!
//! Deterministic per seed, uniform enough for synthetic workload
//! generation. Not the upstream ChaCha streams: numeric sequences differ
//! from real `rand`, but the repo only relies on *seeded determinism*,
//! never on specific values.

/// Core RNG interface: a 64-bit generator.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG (stand-in for the
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Samples a value of type `T` uniformly (the `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}
impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: SplitMix64 (upstream uses ChaCha12;
    /// only seeded determinism matters here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f32 = r.gen();
            let y: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }
}
