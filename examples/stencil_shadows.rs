//! The Doom3-engine rendering algorithm, by hand: z-prepass, stencil
//! shadow volumes with z-fail counting, and an additive lighting pass —
//! the multipass structure responsible for the paper's most striking
//! results (24× rasterization overdraw, >50% of memory bandwidth spent on
//! z & stencil).
//!
//! ```sh
//! cargo run --release --example stencil_shadows
//! ```

use gwc::api::{ClearMask, Command, CommandSink, Indices, StateCommand, VertexLayout};
use gwc::math::Vec4;
use gwc::pipeline::{Gpu, GpuConfig};
use gwc::raster::{BlendFactor, BlendState, CompareFunc, CullMode, DepthState, PrimitiveType,
                  StencilOp, StencilState};
use gwc::shader::{Instr, Program, ProgramKind, Reg, Src};

const W: u32 = 256;
const H: u32 = 192;

/// A z-aligned quad at NDC depth `z`, as two triangles.
fn quad(id: u32, half: f32, z: f32, gpu: &mut Gpu) {
    let mut data = Vec::new();
    for (x, y) in [(-half, -half), (half, -half), (half, half), (-half, half)] {
        data.push(Vec4::new(x, y, z, 1.0));
        data.push(Vec4::new(0.0, 0.0, 1.0, 0.0)); // normal
    }
    gpu.consume(&Command::CreateVertexBuffer {
        id,
        layout: VertexLayout { attributes: 2, stride_bytes: 24 },
        data,
    });
    gpu.consume(&Command::CreateIndexBuffer {
        id,
        indices: Indices::U16(vec![0, 1, 2, 0, 2, 3]),
    });
}

fn draw(gpu: &mut Gpu, buffer: u32) {
    gpu.consume(&Command::Draw {
        vertex_buffer: buffer,
        index_buffer: buffer,
        primitive: PrimitiveType::TriangleList,
        first: 0,
        count: 6,
    });
}

fn main() {
    let mut gpu = Gpu::new(GpuConfig::r520(W, H));

    // Scene: a floor quad (far) and a shadow volume slab in front of its
    // right half. The volume's entry face passes the depth test, the exit
    // face z-fails behind the floor -> net stencil +1 in the shadowed area.
    quad(0, 0.9, 0.5, &mut gpu); // receiver at depth 0.75
    quad(1, 0.45, -0.2, &mut gpu); // volume entry (depth 0.4)
    quad(2, 0.45, 0.9, &mut gpu); // volume exit (depth 0.95, behind receiver)

    let vs = Program::new(
        ProgramKind::Vertex,
        "vs",
        vec![
            Instr::mov(Reg::out(0), Src::input(0)),
            Instr::mov(Reg::out(1), Src::input(1)), // normal varying -> v0
        ],
    )
    .unwrap();
    let fs_depth = Program::new(
        ProgramKind::Fragment,
        "depth-only",
        vec![Instr::mov(Reg::out(0), Src::constant(1))],
    )
    .unwrap();
    let fs_light = Program::new(
        ProgramKind::Fragment,
        "light",
        vec![
            Instr::dp3(Reg::temp(0), Src::input(0), Src::constant(0)),
            Instr::mul(Reg::out(0), Src::temp(0), Src::constant(0)),
        ],
    )
    .unwrap();
    gpu.consume(&Command::CreateProgram { id: 0, program: vs });
    gpu.consume(&Command::CreateProgram { id: 1, program: fs_depth });
    gpu.consume(&Command::CreateProgram { id: 2, program: fs_light });
    gpu.consume(&Command::State(StateCommand::FragmentConstants {
        base: 0,
        values: vec![Vec4::new(0.9, 0.8, 0.6, 1.0)],
    }));
    gpu.consume(&Command::State(StateCommand::Cull(CullMode::None)));

    gpu.consume(&Command::Clear {
        mask: ClearMask::ALL,
        color: Vec4::new(0.0, 0.0, 0.0, 1.0),
        depth: 1.0,
        stencil: 0,
    });

    // --- Pass 1: depth prepass (ambient black) ---
    gpu.consume(&Command::State(StateCommand::BindPrograms { vertex: 0, fragment: 1 }));
    gpu.consume(&Command::State(StateCommand::Depth(DepthState::default())));
    draw(&mut gpu, 0);

    // --- Pass 2: shadow volume, z-fail stencil counting ---
    let volume_stencil = |zfail| StencilState {
        test: true,
        func: CompareFunc::Always,
        reference: 0,
        read_mask: 0xff,
        fail: StencilOp::Keep,
        zfail,
        pass: StencilOp::Keep,
    };
    gpu.consume(&Command::State(StateCommand::ColorMask(false)));
    gpu.consume(&Command::State(StateCommand::Depth(DepthState {
        test: true,
        write: false,
        func: CompareFunc::Less,
    })));
    gpu.consume(&Command::State(StateCommand::StencilFront(volume_stencil(StencilOp::IncrWrap))));
    gpu.consume(&Command::State(StateCommand::StencilBack(volume_stencil(StencilOp::IncrWrap))));
    draw(&mut gpu, 1); // entry face: passes depth, stencil kept
    draw(&mut gpu, 2); // exit face: z-fails behind the floor, stencil +1

    // --- Pass 3: additive lighting where stencil == 0 ---
    gpu.consume(&Command::State(StateCommand::ColorMask(true)));
    gpu.consume(&Command::State(StateCommand::Depth(DepthState {
        test: true,
        write: false,
        func: CompareFunc::Equal,
    })));
    let lit = StencilState {
        test: true,
        func: CompareFunc::Equal,
        reference: 0,
        read_mask: 0xff,
        fail: StencilOp::Keep,
        zfail: StencilOp::Keep,
        pass: StencilOp::Keep,
    };
    gpu.consume(&Command::State(StateCommand::StencilFront(lit)));
    gpu.consume(&Command::State(StateCommand::StencilBack(lit)));
    gpu.consume(&Command::State(StateCommand::Blend(BlendState {
        enabled: true,
        src: BlendFactor::One,
        dst: BlendFactor::One,
    })));
    gpu.consume(&Command::State(StateCommand::BindPrograms { vertex: 0, fragment: 2 }));
    draw(&mut gpu, 0);
    gpu.consume(&Command::EndFrame);

    // --- Inspect ---------------------------------------------------------
    let lit_px = gpu.framebuffer().pixel(W / 4, H / 2); // left half: lit
    let shadow_px = gpu.framebuffer().pixel(5 * W / 8, H / 2); // right: shadowed
    println!("lit pixel      = ({:.2}, {:.2}, {:.2})", lit_px.x, lit_px.y, lit_px.z);
    println!("shadow pixel   = ({:.2}, {:.2}, {:.2})", shadow_px.x, shadow_px.y, shadow_px.z);
    println!(
        "stencil values = lit: {}, shadowed: {}",
        gpu.depth_buffer().stencil_at(W / 4, H / 2),
        gpu.depth_buffer().stencil_at(5 * W / 8, H / 2)
    );
    let f = &gpu.stats().frames()[0];
    let (hz, zst, _alpha, mask, blend) = f.quad_fates();
    println!(
        "quad fates: HZ {:.1}% | z&stencil {:.1}% | color-mask {:.1}% | blended {:.1}%",
        hz * 100.0,
        zst * 100.0,
        mask * 100.0,
        blend * 100.0
    );
    assert!(lit_px.x > 0.1, "left half should be lit");
    assert!(shadow_px.x < 0.05, "right half should be in shadow");
    println!("stencil shadow rendered correctly.");
}
