//! The dynamic cost of texture filtering (the paper's Table XIII insight):
//! bilinear = 1 sample, trilinear = 2, anisotropic up to 2×N — and on
//! glancing surfaces the anisotropic ratio rises with the footprint,
//! so "disbalanced" shader-heavy GPUs lose their advantage.
//!
//! Sweeps a textured floor at increasing obliqueness under different
//! filter modes and prints the measured bilinear cost.
//!
//! ```sh
//! cargo run --release --example anisotropy
//! ```

use gwc::math::{Vec2, Vec4};
use gwc::mem::AddressSpace;
use gwc::texture::{FilterMode, Image, NoopTracker, SampleStats, SamplerState, TexFormat, Texture,
                   WrapMode};

/// Builds the quad texture coordinates for a screen pixel whose footprint
/// in texture space is `fx × fy` texels (an anisotropic footprint when
/// they differ).
fn quad(center: Vec2, fx: f32, fy: f32, texels: f32) -> [Vec4; 4] {
    let du = fx / texels;
    let dv = fy / texels;
    [
        Vec4::new(center.x, center.y, 0.0, 1.0),
        Vec4::new(center.x + du, center.y, 0.0, 1.0),
        Vec4::new(center.x, center.y + dv, 0.0, 1.0),
        Vec4::new(center.x + du, center.y + dv, 0.0, 1.0),
    ]
}

fn measure(texture: &Texture, filter: FilterMode, fx: f32, fy: f32) -> f64 {
    let sampler = SamplerState { wrap: WrapMode::Repeat, filter, lod_bias: 0.0 };
    let mut stats = SampleStats::default();
    // Sample a spread of positions to exercise different mip footprints.
    for i in 0..64 {
        let c = Vec2::new(0.1 + 0.01 * i as f32, 0.2 + 0.007 * i as f32);
        sampler.sample_quad(
            texture,
            &quad(c, fx, fy, texture.width() as f32),
            false,
            0.0,
            [true; 4],
            &mut NoopTracker,
            &mut stats,
        );
    }
    stats.bilinears_per_request()
}

fn main() {
    let mut vram = AddressSpace::new();
    let image = Image::noise(512, 512, 99);
    let texture = Texture::from_image(&image, TexFormat::Dxt1, true, &mut vram);
    println!(
        "texture: 512x512 DXT1, {} mip levels, {} KB in GPU memory\n",
        texture.mip_count(),
        texture.memory_bytes() / 1024
    );

    println!("bilinear samples per texture request (dynamic Table XIII cost):");
    println!("{:<28}{:>10}{:>10}{:>10}{:>10}", "filter \\ anisotropy", "1:1", "4:1", "8:1", "16:1");
    let footprints = [(2.0, 2.0), (8.0, 2.0), (16.0, 2.0), (32.0, 2.0)];
    for (name, filter) in [
        ("nearest", FilterMode::Nearest),
        ("bilinear", FilterMode::Bilinear),
        ("trilinear", FilterMode::Trilinear),
        ("anisotropic 4x", FilterMode::Anisotropic(4)),
        ("anisotropic 8x", FilterMode::Anisotropic(8)),
        ("anisotropic 16x", FilterMode::Anisotropic(16)),
    ] {
        print!("{name:<28}");
        for &(fx, fy) in &footprints {
            print!("{:>10.2}", measure(&texture, filter, fx, fy));
        }
        println!();
    }

    println!();
    println!("The paper's point: at 16x anisotropy a single texture request can");
    println!("cost up to 32 bilinear cycles, so the *effective* ALU:TEX ratio of");
    println!("games (Table XII, 2-10 static) drops below 1 dynamically (Table");
    println!("XIII) - and 3:1 disbalanced shader architectures starve.");
}
