//! Characterize one game timedemo end-to-end, exactly as the paper's
//! methodology does: generate (in the paper: capture) the API trace, gather
//! API-level statistics, then drive the GPU simulator for the
//! microarchitectural ones.
//!
//! ```sh
//! cargo run --release --example characterize_game -- "Doom3/trdemo2"
//! ```

use gwc::core::{characterize, RunConfig};
use gwc::mem::MemClient;
use gwc::workloads::GameProfile;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Doom3/trdemo2".to_string());
    let Some(profile) = GameProfile::by_name(&name) else {
        eprintln!("unknown timedemo {name:?}; available:");
        for p in GameProfile::all() {
            eprintln!("  {}", p.name);
        }
        std::process::exit(1);
    };

    let config = RunConfig { api_frames: 120, sim_frames: 3, width: 320, height: 240, seed: 7 };
    println!("characterizing {} ({} engine, {})...", profile.name, profile.engine, profile.api.name());
    let result = characterize(profile, &config);

    println!("\n-- API level ({} frames) --", result.api.frames());
    println!("  batches/frame          : {:.0} (paper: {:.0})",
        result.api.totals().batches as f64 / result.api.frames() as f64,
        profile.batches_per_frame());
    println!("  indices/batch          : {:.0} (paper: {:.0})",
        result.api.avg_indices_per_batch(), profile.indices_per_batch);
    println!("  indices/frame          : {:.0} (paper: {:.0})",
        result.api.avg_indices_per_frame(), profile.indices_per_frame);
    println!("  vertex shader instr    : {:.2} (paper: {:.2})",
        result.api.avg_vertex_instructions(), profile.vs_instructions);
    println!("  fragment instr         : {:.2} (paper: {:.2})",
        result.api.avg_fragment_instructions(), profile.fs_instructions);
    println!("  fragment tex instr     : {:.2} (paper: {:.2})",
        result.api.avg_fragment_tex_instructions(), profile.fs_tex_instructions);
    println!("  ALU:TEX ratio          : {:.2} (paper: {:.2})",
        result.api.alu_tex_ratio(), profile.alu_tex_ratio());
    let (tl, ts, tf) = result.api.primitive_shares();
    println!("  primitive mix TL/TS/TF : {:.1}%/{:.1}%/{:.1}%", tl * 100.0, ts * 100.0, tf * 100.0);

    let Some(sim) = result.sim else {
        println!("\n(not in the paper's simulated subset; API statistics only)");
        return;
    };
    let t = sim.stats.totals();
    println!("\n-- microarchitecture ({} frames at {}x{}) --",
        sim.stats.frames().len(), sim.width, sim.height);
    println!("  vertex cache hit rate  : {:.1}%", t.vertex_cache_hit_rate() * 100.0);
    let (c, k, tr) = t.triangle_fates();
    println!("  clipped/culled/traversed: {:.0}% / {:.0}% / {:.0}%", c * 100.0, k * 100.0, tr * 100.0);
    let frames = sim.stats.frames().len() as u64;
    let (r, z, s, b) = t.overdraw(sim.pixels() * frames);
    println!("  overdraw r/z/s/b       : {r:.2} / {z:.2} / {s:.2} / {b:.2}");
    let (hz, zst, alpha, mask, blend) = t.quad_fates();
    println!("  quad fates             : HZ {:.1}% | z&st {:.1}% | alpha {:.1}% | mask {:.1}% | blend {:.1}%",
        hz * 100.0, zst * 100.0, alpha * 100.0, mask * 100.0, blend * 100.0);
    println!("  bilinears per request  : {:.2}", t.bilinears_per_request());
    println!("  z$ / tex L0 / color$   : {:.1}% / {:.1}% / {:.1}%",
        sim.z_cache.hit_rate() * 100.0, sim.tex_l0.hit_rate() * 100.0, sim.color_cache.hit_rate() * 100.0);
    let total = sim.total_traffic();
    println!("  memory per frame       : {:.1} MB", sim.mean_bytes_per_frame() / (1024.0 * 1024.0));
    print!("  traffic distribution   :");
    for client in MemClient::ALL {
        print!(" {} {:.1}%", client.name(), total.share(client) * 100.0);
    }
    println!();
}
