//! Quickstart: build a GPU, draw a textured triangle, read the statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gwc::api::{ClearMask, Command, CommandSink, Indices, StateCommand, VertexLayout};
use gwc::math::Vec4;
use gwc::pipeline::{Gpu, GpuConfig};
use gwc::raster::PrimitiveType;
use gwc::shader::{Instr, Program, ProgramKind, Reg, Src};
use gwc::texture::{FilterMode, Image, SamplerState, TexFormat, WrapMode};

fn main() {
    // A 256x192 render target with the paper's R520-like configuration.
    let mut gpu = Gpu::new(GpuConfig::r520(256, 192));

    // --- Resources -------------------------------------------------------
    // One triangle: position + texcoord per vertex.
    let vertices = vec![
        // position                        texcoord
        Vec4::new(-0.8, -0.8, 0.0, 1.0),
        Vec4::new(0.0, 0.0, 0.0, 0.0),
        Vec4::new(0.8, -0.8, 0.0, 1.0),
        Vec4::new(4.0, 0.0, 0.0, 0.0),
        Vec4::new(0.0, 0.9, 0.0, 1.0),
        Vec4::new(2.0, 4.0, 0.0, 0.0),
    ];
    gpu.consume(&Command::CreateVertexBuffer {
        id: 0,
        layout: VertexLayout { attributes: 2, stride_bytes: 24 },
        data: vertices,
    });
    gpu.consume(&Command::CreateIndexBuffer { id: 0, indices: Indices::U16(vec![0, 1, 2]) });
    gpu.consume(&Command::CreateTexture {
        id: 0,
        image: Image::checkerboard(64, 64, 8, [255, 220, 40, 255], [40, 40, 220, 255]),
        format: TexFormat::Dxt1,
        mipmaps: true,
        sampler: SamplerState {
            wrap: WrapMode::Repeat,
            filter: FilterMode::Anisotropic(16),
            lod_bias: 0.0,
        },
    });

    // Pass-through vertex program; textured fragment program.
    let vs = Program::new(
        ProgramKind::Vertex,
        "passthrough",
        vec![
            Instr::mov(Reg::out(0), Src::input(0)),
            Instr::mov(Reg::out(1), Src::input(1)),
        ],
    )
    .expect("valid vertex program");
    let fs = Program::new(
        ProgramKind::Fragment,
        "textured",
        vec![
            Instr::tex(Reg::temp(0), Src::input(0), 0),
            Instr::mov(Reg::out(0), Src::temp(0)),
        ],
    )
    .expect("valid fragment program");
    gpu.consume(&Command::CreateProgram { id: 0, program: vs });
    gpu.consume(&Command::CreateProgram { id: 1, program: fs });

    // --- One frame -------------------------------------------------------
    gpu.consume(&Command::State(StateCommand::BindTexture { unit: 0, texture: 0 }));
    gpu.consume(&Command::State(StateCommand::BindPrograms { vertex: 0, fragment: 1 }));
    gpu.consume(&Command::Clear {
        mask: ClearMask::ALL,
        color: Vec4::new(0.1, 0.1, 0.12, 1.0),
        depth: 1.0,
        stencil: 0,
    });
    gpu.consume(&Command::Draw {
        vertex_buffer: 0,
        index_buffer: 0,
        primitive: PrimitiveType::TriangleList,
        first: 0,
        count: 3,
    });
    gpu.consume(&Command::EndFrame);

    // --- Statistics ------------------------------------------------------
    let frame = &gpu.stats().frames()[0];
    println!("triangle drawn through the full pipeline:");
    println!("  fragments rasterized : {}", frame.frags_raster);
    println!("  fragments shaded     : {}", frame.frags_shaded);
    println!("  fragments blended    : {}", frame.frags_blended);
    println!("  quads (complete)     : {} ({})", frame.quads_raster, frame.quads_complete_raster);
    println!("  texture requests     : {}", frame.tex_requests);
    println!(
        "  bilinear samples     : {} ({:.2} per request)",
        frame.bilinear_samples,
        frame.bilinears_per_request()
    );
    println!(
        "  texture L0 hit rate  : {:.1}%",
        100.0 * gpu.tex_l0_stats().hit_rate()
    );
    let mem = gpu.memory().frames()[0];
    println!("  memory traffic       : {} bytes ({} read / {} written)",
        mem.total(), mem.total_read(), mem.total_written());
    let center = gpu.framebuffer().pixel(128, 120);
    println!("  center pixel         : ({:.2}, {:.2}, {:.2})", center.x, center.y, center.z);
}
